#include "engine/store_persist.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/arrival.hpp"
#include "engine/artifact_types.hpp"

namespace wharf {

namespace {

constexpr char kMagic[8] = {'W', 'H', 'A', 'R', 'F', 'S', 'T', 'O'};

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, table-driven)
// ---------------------------------------------------------------------

const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) c = (c >> 1) ^ ((c & 1u) != 0 ? 0xedb88320u : 0u);
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t crc32(const char* data, std::size_t size) {
  const std::uint32_t* table = crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(data[i])) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

// ---------------------------------------------------------------------
// Primitive little-endian writer / bounded reader
// ---------------------------------------------------------------------

void put_u8(std::string& out, std::uint8_t v) { out += static_cast<char>(v); }

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xffu);
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xffu);
}

void put_i64(std::string& out, std::int64_t v) { put_u64(out, static_cast<std::uint64_t>(v)); }

void put_i32(std::string& out, std::int32_t v) { put_u32(out, static_cast<std::uint32_t>(v)); }

void put_string(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

// Load-side integrity failure; thrown and caught entirely inside
// StoreSnapshot::load() (the public contract is a clean cold fallback).
struct Corrupt {
  std::string what;
};

/// Bounded cursor over the snapshot bytes: every read checks the
/// remaining size first, and every length field is validated against the
/// remaining bytes before any allocation (an attacker-sized length field
/// must not become an allocation bomb).
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] const char* cursor() const { return data_ + pos_; }

  std::uint8_t u8() {
    need(1, "u8");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  std::string bytes(std::size_t n, const char* what) {
    need(n, what);
    std::string out(data_ + pos_, n);
    pos_ += n;
    return out;
  }

  std::string str() {
    const std::uint32_t n = u32();
    return bytes(n, "string payload");
  }

  void need(std::size_t n, const char* what) const {
    if (n > size_ - pos_) {
      throw Corrupt{std::string("truncated while reading ") + what};
    }
  }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Per-type value serializers
// ---------------------------------------------------------------------

void put_int_vector(std::string& out, const std::vector<int>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const int x : v) put_i32(out, x);
}

std::vector<int> get_int_vector(Reader& in) {
  const std::uint32_t n = in.u32();
  in.need(std::size_t{n} * 4, "int vector");
  std::vector<int> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(in.i32());
  return v;
}

void put_i64_vector(std::string& out, const std::vector<std::int64_t>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const std::int64_t x : v) put_i64(out, x);
}

std::vector<std::int64_t> get_i64_vector(Reader& in) {
  const std::uint32_t n = in.u32();
  in.need(std::size_t{n} * 8, "i64 vector");
  std::vector<std::int64_t> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(in.i64());
  return v;
}

void put_segment(std::string& out, const Segment& s) {
  put_int_vector(out, s.tasks);
  put_u8(out, s.wraps ? 1 : 0);
  put_i64(out, s.cost);
}

Segment get_segment(Reader& in) {
  Segment s;
  s.tasks = get_int_vector(in);
  s.wraps = in.u8() != 0;
  s.cost = in.i64();
  return s;
}

// Arrival tables are serialized as the wrapped model's canonical
// describe() text and rebuilt deterministically via parse_arrival() —
// the same faithful-encoding caveat the cache keys already rely on.
void put_table(std::string& out, const std::shared_ptr<const ArrivalTable>& table) {
  put_u8(out, table != nullptr ? 1 : 0);
  if (table != nullptr) put_string(out, table->model().describe());
}

std::shared_ptr<const ArrivalTable> get_table(Reader& in) {
  if (in.u8() == 0) return nullptr;
  const std::string spec = in.str();
  try {
    return std::make_shared<const ArrivalTable>(parse_arrival(spec));
  } catch (const std::exception& e) {
    throw Corrupt{std::string("bad arrival spec '") + spec + "': " + e.what()};
  }
}

void put_interference(std::string& out, const InterferenceContext& ctx) {
  put_i32(out, ctx.target);
  put_int_vector(out, ctx.self_header);
  put_i64(out, ctx.self_header_cost);
  put_u32(out, static_cast<std::uint32_t>(ctx.others.size()));
  for (const ChainInterference& info : ctx.others) {
    put_i32(out, info.chain);
    put_u8(out, info.deferred ? 1 : 0);
    put_u32(out, static_cast<std::uint32_t>(info.segments.size()));
    for (const Segment& s : info.segments) put_segment(out, s);
    put_u8(out, info.critical.has_value() ? 1 : 0);
    if (info.critical.has_value()) put_segment(out, *info.critical);
    put_int_vector(out, info.header_segment);
    put_i64(out, info.header_segment_cost);
    put_i64(out, info.segments_total_cost);
    put_table(out, info.table);
  }
  put_table(out, ctx.self_table);
}

InterferenceContext get_interference(Reader& in) {
  InterferenceContext ctx;
  ctx.target = in.i32();
  ctx.self_header = get_int_vector(in);
  ctx.self_header_cost = in.i64();
  const std::uint32_t others = in.u32();
  in.need(others, "interference others");  // >= 1 byte each
  ctx.others.reserve(others);
  for (std::uint32_t i = 0; i < others; ++i) {
    ChainInterference info;
    info.chain = in.i32();
    info.deferred = in.u8() != 0;
    const std::uint32_t segments = in.u32();
    in.need(segments, "interference segments");
    info.segments.reserve(segments);
    for (std::uint32_t s = 0; s < segments; ++s) info.segments.push_back(get_segment(in));
    if (in.u8() != 0) info.critical = get_segment(in);
    info.header_segment = get_int_vector(in);
    info.header_segment_cost = in.i64();
    info.segments_total_cost = in.i64();
    info.table = get_table(in);
    ctx.others.push_back(std::move(info));
  }
  ctx.self_table = get_table(in);
  return ctx;
}

void put_latency(std::string& out, const LatencyResult& r) {
  put_u8(out, r.bounded ? 1 : 0);
  put_string(out, r.reason);
  put_i64(out, r.K);
  put_i64_vector(out, r.busy_times);
  put_i64(out, r.wcl);
  put_i64(out, r.worst_q);
  put_u8(out, r.misses_per_window.has_value() ? 1 : 0);
  if (r.misses_per_window.has_value()) put_i64(out, *r.misses_per_window);
  put_u8(out, r.schedulable ? 1 : 0);
}

LatencyResult get_latency(Reader& in) {
  LatencyResult r;
  r.bounded = in.u8() != 0;
  r.reason = in.str();
  r.K = in.i64();
  r.busy_times = get_i64_vector(in);
  r.wcl = in.i64();
  r.worst_q = in.i64();
  if (in.u8() != 0) r.misses_per_window = in.i64();
  r.schedulable = in.u8() != 0;
  return r;
}

void put_target_artifacts(std::string& out, const TargetArtifacts& a) {
  put_i64(out, a.slack);
  put_i32(out, a.structure.target);
  put_u32(out, static_cast<std::uint32_t>(a.structure.per_chain.size()));
  for (const OverloadActiveSegments& pc : a.structure.per_chain) {
    put_i32(out, pc.chain);
    put_u32(out, static_cast<std::uint32_t>(pc.active.size()));
    for (const ActiveSegment& s : pc.active) {
      put_i32(out, s.segment_index);
      put_int_vector(out, s.tasks);
      put_i64(out, s.cost);
    }
  }
  put_u32(out, static_cast<std::uint32_t>(a.unschedulable.size()));
  for (const Combination& c : a.unschedulable) {
    put_u32(out, static_cast<std::uint32_t>(c.segments.size()));
    for (const ActiveSegmentId& id : c.segments) {
      put_i32(out, id.chain_pos);
      put_i32(out, id.active_index);
    }
    put_i64(out, c.cost);
  }
  put_u8(out, a.no_guarantee_reason.has_value() ? 1 : 0);
  if (a.no_guarantee_reason.has_value()) put_string(out, *a.no_guarantee_reason);
  put_u8(out, a.always_meets ? 1 : 0);
}

TargetArtifacts get_target_artifacts(Reader& in) {
  TargetArtifacts a;
  a.slack = in.i64();
  a.structure.target = in.i32();
  const std::uint32_t chains = in.u32();
  in.need(chains, "overload chains");
  a.structure.per_chain.reserve(chains);
  for (std::uint32_t i = 0; i < chains; ++i) {
    OverloadActiveSegments pc;
    pc.chain = in.i32();
    const std::uint32_t active = in.u32();
    in.need(active, "active segments");
    pc.active.reserve(active);
    for (std::uint32_t s = 0; s < active; ++s) {
      ActiveSegment seg;
      seg.segment_index = in.i32();
      seg.tasks = get_int_vector(in);
      seg.cost = in.i64();
      pc.active.push_back(std::move(seg));
    }
    a.structure.per_chain.push_back(std::move(pc));
  }
  const std::uint32_t combinations = in.u32();
  in.need(combinations, "combinations");
  a.unschedulable.reserve(combinations);
  for (std::uint32_t i = 0; i < combinations; ++i) {
    Combination c;
    const std::uint32_t ids = in.u32();
    in.need(std::size_t{ids} * 8, "combination segments");
    c.segments.reserve(ids);
    for (std::uint32_t s = 0; s < ids; ++s) {
      ActiveSegmentId id;
      id.chain_pos = in.i32();
      id.active_index = in.i32();
      c.segments.push_back(id);
    }
    c.cost = in.i64();
    a.unschedulable.push_back(std::move(c));
  }
  if (in.u8() != 0) a.no_guarantee_reason = in.str();
  a.always_meets = in.u8() != 0;
  return a;
}

void put_dmm(std::string& out, const DmmResult& r) {
  put_i64(out, r.k);
  put_i64(out, r.dmm);
  put_u8(out, static_cast<std::uint8_t>(r.status));
  put_string(out, r.reason);
  put_i64(out, r.wcl);
  put_i64(out, r.K);
  put_i64(out, r.n_b);
  put_i64(out, r.slack);
  put_i64_vector(out, r.omegas);
  put_u64(out, r.combination_count);
  put_u64(out, r.unschedulable_count);
  put_i64(out, r.packing_optimum);
  put_i64(out, r.solver_nodes);
}

DmmResult get_dmm(Reader& in) {
  DmmResult r;
  r.k = in.i64();
  r.dmm = in.i64();
  const std::uint8_t status = in.u8();
  if (status > static_cast<std::uint8_t>(DmmStatus::kNoGuarantee)) {
    throw Corrupt{"dmm status out of range"};
  }
  r.status = static_cast<DmmStatus>(status);
  r.reason = in.str();
  r.wcl = in.i64();
  r.K = in.i64();
  r.n_b = in.i64();
  r.slack = in.i64();
  r.omegas = get_i64_vector(in);
  r.combination_count = in.u64();
  r.unschedulable_count = in.u64();
  r.packing_optimum = in.i64();
  r.solver_nodes = in.i64();
  return r;
}

void put_packing(std::string& out, const ilp::PackingSolution& s) {
  put_i64(out, s.total);
  put_i64_vector(out, s.counts);
  put_i64(out, s.nodes);
}

ilp::PackingSolution get_packing(Reader& in) {
  ilp::PackingSolution s;
  s.total = in.i64();
  s.counts = get_i64_vector(in);
  s.nodes = in.i64();
  return s;
}

/// Serialized payload of one artifact, or nullopt for values persistence
/// does not cover (the caller counts them as skipped).
std::optional<std::string> serialize_value(ArtifactType type, const void* value) {
  std::string out;
  switch (type) {
    case ArtifactType::kInterferenceContext:
      put_interference(out, *static_cast<const InterferenceContext*>(value));
      return out;
    case ArtifactType::kLatencyResult:
      put_latency(out, *static_cast<const LatencyResult*>(value));
      return out;
    case ArtifactType::kTargetArtifacts:
      put_target_artifacts(out, *static_cast<const TargetArtifacts*>(value));
      return out;
    case ArtifactType::kDmmResult:
      put_dmm(out, *static_cast<const DmmResult*>(value));
      return out;
    case ArtifactType::kPackingSolution:
      put_packing(out, *static_cast<const ilp::PackingSolution*>(value));
      return out;
    case ArtifactType::kBusyWindowBatch:
      // The batch marker is persisted with an empty payload: its members
      // are individually persisted LatencyResults, and nothing reads the
      // marker's gathered pointers — residency alone is what lets a
      // restarted serve join batched rounds without recomputation.
      return out;
    case ArtifactType::kUntyped:
      return std::nullopt;
  }
  return std::nullopt;
}

/// Deserialized artifact plus its re-measured weight (weight_of —
/// weights are never trusted from disk).
struct DecodedValue {
  std::shared_ptr<const void> value;
  std::size_t weight = 0;
};

DecodedValue decode_value(ArtifactType type, Reader& in) {
  DecodedValue out;
  switch (type) {
    case ArtifactType::kInterferenceContext: {
      auto v = std::make_shared<const InterferenceContext>(get_interference(in));
      out.weight = weight_of(*v);
      out.value = std::move(v);
      return out;
    }
    case ArtifactType::kLatencyResult: {
      auto v = std::make_shared<const LatencyResult>(get_latency(in));
      out.weight = weight_of(*v);
      out.value = std::move(v);
      return out;
    }
    case ArtifactType::kTargetArtifacts: {
      auto v = std::make_shared<const TargetArtifacts>(get_target_artifacts(in));
      out.weight = weight_of(*v);
      out.value = std::move(v);
      return out;
    }
    case ArtifactType::kDmmResult: {
      auto v = std::make_shared<const DmmResult>(get_dmm(in));
      out.weight = weight_of(*v);
      out.value = std::move(v);
      return out;
    }
    case ArtifactType::kPackingSolution: {
      auto v = std::make_shared<const ilp::PackingSolution>(get_packing(in));
      out.weight = weight_of(*v);
      out.value = std::move(v);
      return out;
    }
    case ArtifactType::kBusyWindowBatch: {
      auto v = std::make_shared<const BusyWindowBatch>();
      out.weight = weight_of(*v);
      out.value = std::move(v);
      return out;
    }
    case ArtifactType::kUntyped:
      break;
  }
  throw Corrupt{"unknown artifact type tag " + std::to_string(static_cast<int>(type))};
}

// ---------------------------------------------------------------------
// Temp-file plumbing
// ---------------------------------------------------------------------

/// Writes `data` to `temp_path` (O_TRUNC) honoring the fail_after_bytes
/// crash hook, fsyncs, and returns OK; on any failure the temp file is
/// closed and unlinked.
Status write_temp_file(const std::string& temp_path, const std::string& data,
                       const StoreSaveOptions& options) {
  const int fd = ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::internal("open('" + temp_path + "'): " + std::strerror(errno));
  }
  std::size_t written = 0;
  Status status;
  while (written < data.size() && status.is_ok()) {
    std::size_t chunk = data.size() - written;
    if (written + chunk > options.fail_after_bytes) {
      // Simulated crash: write the allowed prefix, then fail — the temp
      // file holds garbage exactly as a real mid-spill crash would leave.
      chunk = options.fail_after_bytes > written ? options.fail_after_bytes - written : 0;
      if (chunk > 0) (void)::write(fd, data.data() + written, chunk);
      status = Status::internal("simulated write failure after " +
                                std::to_string(options.fail_after_bytes) + " bytes");
      break;
    }
    const ssize_t n = ::write(fd, data.data() + written, chunk);
    if (n <= 0) {
      status = Status::internal("write('" + temp_path + "'): " + std::strerror(errno));
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  if (status.is_ok() && ::fsync(fd) != 0) {
    status = Status::internal("fsync('" + temp_path + "'): " + std::strerror(errno));
  }
  ::close(fd);
  if (!status.is_ok()) ::unlink(temp_path.c_str());
  return status;
}

}  // namespace

// ---------------------------------------------------------------------
// StoreSnapshot
// ---------------------------------------------------------------------

StoreSaveResult StoreSnapshot::save(const ArtifactStore& store, const std::string& path,
                                    const StoreSaveOptions& options) {
  StoreSaveResult result;
  const std::vector<ArtifactStore::ExportedArtifact> artifacts = store.export_artifacts();
  const KeyInterner& interner = store.interner();
  const std::size_t live_fragments = interner.size();

  // Translate live fragment ids to dense file-local ids in first-
  // appearance order, collecting the referenced fragment texts — the
  // snapshot carries only fragments its keys actually use.
  std::unordered_map<std::uint32_t, std::uint32_t> local_ids;
  std::vector<std::uint32_t> used_live_ids;
  std::string records;
  for (const ArtifactStore::ExportedArtifact& artifact : artifacts) {
    const auto type = static_cast<ArtifactType>(artifact.type_tag);
    std::optional<std::string> payload =
        type != ArtifactType::kUntyped ? serialize_value(type, artifact.value.get())
                                       : std::nullopt;
    // Keys must be interned id sequences (everything the pipeline
    // writes is); anything else is not portable and is left out.
    const bool interned_key =
        artifact.key.size() % KeyInterner::kIdBytes == 0 && !artifact.key.empty();
    if (!payload.has_value() || !interned_key) {
      ++result.records_skipped;
      continue;
    }
    std::string local_key;
    local_key.reserve(artifact.key.size());
    bool valid = true;
    for (std::size_t i = 0; i < artifact.key.size(); i += KeyInterner::kIdBytes) {
      const std::uint32_t live = KeyInterner::read_id(artifact.key.data() + i);
      if (live >= live_fragments) {
        valid = false;
        break;
      }
      const auto [it, inserted] =
          local_ids.emplace(live, static_cast<std::uint32_t>(used_live_ids.size()));
      if (inserted) used_live_ids.push_back(live);
      KeyInterner::append_id(local_key, it->second);
    }
    if (!valid) {
      ++result.records_skipped;
      continue;
    }

    std::string record;
    record.reserve(local_key.size() + payload->size() + 32);
    put_u8(record, static_cast<std::uint8_t>(static_cast<int>(artifact.stage)));
    put_u8(record, artifact.type_tag);
    put_u32(record, static_cast<std::uint32_t>(local_key.size()));
    record += local_key;
    put_u64(record, payload->size());
    record += *payload;
    records += 'R';
    records += record;
    put_u32(records, crc32(record.data(), record.size()));
    ++result.records_written;
  }

  // String-table section ('S'): the used fragments in file-local order.
  std::string table_payload;
  for (const std::uint32_t live : used_live_ids) {
    put_string(table_payload, interner.fragment(live));
  }

  std::string file;
  file.reserve(16 + table_payload.size() + records.size() + 32);
  file.append(kMagic, sizeof kMagic);
  put_u32(file, kStoreFormatVersion);
  file += 'S';
  put_u32(file, static_cast<std::uint32_t>(used_live_ids.size()));
  put_u64(file, table_payload.size());
  file += table_payload;
  put_u32(file, crc32(table_payload.data(), table_payload.size()));
  file += records;
  std::string footer;
  put_u64(footer, result.records_written);
  file += 'F';
  file += footer;
  put_u32(file, crc32(footer.data(), footer.size()));

  const std::string temp_path = path + ".tmp." + std::to_string(::getpid());
  result.status = write_temp_file(temp_path, file, options);
  if (!result.status.is_ok()) {
    result.records_written = 0;
    return result;
  }
  if (::rename(temp_path.c_str(), path.c_str()) != 0) {
    result.status = Status::internal("rename('" + temp_path + "' -> '" + path +
                                     "'): " + std::strerror(errno));
    ::unlink(temp_path.c_str());
    result.records_written = 0;
    return result;
  }
  result.bytes_written = file.size();
  return result;
}

StoreLoadResult StoreSnapshot::load(ArtifactStore& store, const std::string& path) {
  StoreLoadResult result;

  std::string file;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      // A missing snapshot is the normal first run, not corruption.
      result.cold = true;
      result.reason = "no snapshot at '" + path + "'";
      return result;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof()) {
      result.cold = true;
      result.records_skipped = 1;
      result.reason = "read error on '" + path + "'";
      return result;
    }
    file = buf.str();
  }

  struct StagedRecord {
    ArtifactStage stage{};
    std::uint8_t type_tag = 0;
    std::string key;  // live interned key
    DecodedValue decoded;
  };
  std::vector<StagedRecord> staged;

  try {
    Reader in(file.data(), file.size());
    const std::string magic = in.bytes(sizeof kMagic, "magic");
    if (std::memcmp(magic.data(), kMagic, sizeof kMagic) != 0) {
      throw Corrupt{"bad magic (not a wharf store snapshot)"};
    }
    const std::uint32_t version = in.u32();
    if (version != kStoreFormatVersion) {
      // Deliberately before any checksum: a newer/older format is a
      // clean mismatch, not corruption.
      result.cold = true;
      result.records_skipped = 1;
      result.reason = "format version " + std::to_string(version) + " unsupported (expected " +
                      std::to_string(kStoreFormatVersion) + ")";
      return result;
    }

    if (in.u8() != 'S') throw Corrupt{"missing string-table section"};
    const std::uint32_t fragment_count = in.u32();
    const std::uint64_t table_len = in.u64();
    in.need(table_len, "string table");
    const char* table_start = in.cursor();
    Reader table(table_start, table_len);
    std::vector<std::string> fragments;
    in.need(fragment_count, "string table entries");  // >= 1 byte each
    fragments.reserve(fragment_count);
    for (std::uint32_t i = 0; i < fragment_count; ++i) fragments.push_back(table.str());
    if (table.remaining() != 0) throw Corrupt{"string table has trailing bytes"};
    // Advance past the payload we just parsed, then verify it.
    const std::string payload = in.bytes(table_len, "string table payload");
    if (in.u32() != crc32(payload.data(), payload.size())) {
      throw Corrupt{"string table checksum mismatch"};
    }

    // Translate file-local fragment ids into the live interner once.
    std::vector<std::uint32_t> live_ids;
    live_ids.reserve(fragments.size());
    for (const std::string& fragment : fragments) {
      live_ids.push_back(store.interner().intern(fragment));
    }

    bool saw_footer = false;
    while (in.remaining() > 0) {
      const std::uint8_t section = in.u8();
      if (section == 'F') {
        const std::size_t start = in.pos();
        const std::uint64_t count = in.u64();
        const std::string footer(file.data() + start, in.pos() - start);
        if (in.u32() != crc32(footer.data(), footer.size())) {
          throw Corrupt{"footer checksum mismatch"};
        }
        if (count != staged.size()) {
          throw Corrupt{"footer record count " + std::to_string(count) + " != " +
                        std::to_string(staged.size()) + " records present"};
        }
        if (in.remaining() != 0) throw Corrupt{"trailing bytes after footer"};
        saw_footer = true;
        break;
      }
      if (section != 'R') throw Corrupt{"unknown section tag"};
      const std::size_t record_start = in.pos();
      const std::uint8_t stage = in.u8();
      if (stage >= kArtifactStageCount) throw Corrupt{"record stage out of range"};
      const std::uint8_t type_tag = in.u8();
      const std::uint32_t key_len = in.u32();
      if (key_len % KeyInterner::kIdBytes != 0 || key_len == 0) {
        throw Corrupt{"record key length invalid"};
      }
      const std::string local_key = in.bytes(key_len, "record key");
      const std::uint64_t payload_len = in.u64();
      in.need(payload_len, "record payload");
      Reader payload(in.cursor(), payload_len);
      StagedRecord record;
      record.stage = static_cast<ArtifactStage>(static_cast<int>(stage));
      record.type_tag = type_tag;
      record.decoded = decode_value(static_cast<ArtifactType>(type_tag), payload);
      if (payload.remaining() != 0) throw Corrupt{"record payload has trailing bytes"};
      (void)in.bytes(payload_len, "record payload");  // advance
      const std::size_t record_end = in.pos();
      const std::string record_bytes(file.data() + record_start, record_end - record_start);
      if (in.u32() != crc32(record_bytes.data(), record_bytes.size())) {
        throw Corrupt{"record checksum mismatch"};
      }
      // Rebuild the live key from the verified record's file-local ids.
      record.key.reserve(key_len);
      for (std::uint32_t i = 0; i < key_len; i += KeyInterner::kIdBytes) {
        const std::uint32_t local = KeyInterner::read_id(local_key.data() + i);
        if (local >= live_ids.size()) throw Corrupt{"record key references unknown fragment"};
        KeyInterner::append_id(record.key, live_ids[local]);
      }
      staged.push_back(std::move(record));
    }
    if (!saw_footer) throw Corrupt{"snapshot ends without footer"};
  } catch (const Corrupt& corrupt) {
    // All-or-nothing: nothing staged reaches the store.  The caller gets
    // a clean OK status and a cold store with the reason logged.
    result.cold = true;
    result.records_skipped = staged.empty() ? 1 : staged.size();
    result.reason = corrupt.what;
    return result;
  }

  // Everything verified — commit.  Records were saved least-recent-
  // first, so sequential insertion reproduces the saved recency order.
  for (StagedRecord& record : staged) {
    store.insert(record.stage, record.key, std::move(record.decoded.value),
                 record.decoded.weight, record.type_tag);
  }
  result.records_loaded = staged.size();
  result.cold = staged.empty();
  return result;
}

StoreSaveResult ArtifactStore::save(const std::string& path) const {
  return StoreSnapshot::save(*this, path);
}

StoreLoadResult ArtifactStore::load(const std::string& path) {
  return StoreSnapshot::load(*this, path);
}

std::string store_snapshot_path(const std::string& dir) {
  if (dir.empty()) return "wharf_store.snapshot";
  return dir.back() == '/' ? dir + "wharf_store.snapshot" : dir + "/wharf_store.snapshot";
}

Status ensure_store_dir(const std::string& dir) {
  struct stat st {};
  if (::stat(dir.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      return Status::invalid_argument("store dir '" + dir + "' exists and is not a directory");
    }
    return Status::ok();
  }
  // mkdir -p: missing parents are created too (the distributed sweep
  // hands each worker a DIR/worker-<i> family under one root).
  const auto parent_end = dir.find_last_of('/');
  if (parent_end != std::string::npos && parent_end > 0) {
    const Status parent = ensure_store_dir(dir.substr(0, parent_end));
    if (!parent.is_ok()) return parent;
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::invalid_argument("mkdir('" + dir + "'): " + std::strerror(errno));
  }
  return Status::ok();
}

}  // namespace wharf
