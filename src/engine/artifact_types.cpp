#include "engine/artifact_types.hpp"

namespace wharf {

std::size_t weight_of(const InterferenceContext& ctx) {
  std::size_t total = sizeof(ctx) + util::heap_bytes(ctx.self_header);
  if (ctx.self_table) total += sizeof(ArrivalTable) + ctx.self_table->heap_bytes();
  for (const ChainInterference& info : ctx.others) {
    total += sizeof(info) + util::heap_bytes(info.header_segment);
    for (const Segment& s : info.segments) total += sizeof(s) + util::heap_bytes(s.tasks);
    if (info.critical.has_value()) total += util::heap_bytes(info.critical->tasks);
    if (info.table) total += sizeof(ArrivalTable) + info.table->heap_bytes();
  }
  return total;
}

std::size_t weight_of(const BusyWindowBatch& batch) {
  return sizeof(batch) + batch.results.capacity() * sizeof(batch.results[0]);
}

std::size_t weight_of(const LatencyResult& r) {
  return sizeof(r) + util::heap_bytes(r.busy_times) + util::heap_bytes(r.reason);
}

std::size_t weight_of(const TargetArtifacts& a) {
  std::size_t total = sizeof(a);
  for (const OverloadActiveSegments& pc : a.structure.per_chain) {
    total += sizeof(pc);
    for (const ActiveSegment& s : pc.active) total += sizeof(s) + util::heap_bytes(s.tasks);
  }
  for (const Combination& c : a.unschedulable) total += sizeof(c) + util::heap_bytes(c.segments);
  if (a.no_guarantee_reason.has_value()) total += util::heap_bytes(*a.no_guarantee_reason);
  return total;
}

std::size_t weight_of(const DmmResult& r) {
  return sizeof(r) + util::heap_bytes(r.omegas) + util::heap_bytes(r.reason);
}

std::size_t weight_of(const ilp::PackingSolution& s) {
  return sizeof(s) + util::heap_bytes(s.counts);
}

}  // namespace wharf
