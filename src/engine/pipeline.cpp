#include "engine/pipeline.hpp"

#include <algorithm>
#include <exception>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "core/model_slice.hpp"
#include "util/expect.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/weight.hpp"

namespace wharf {

namespace {

// ---------------------------------------------------------------------
// Artifact weights (bytes resident per artifact type)
// ---------------------------------------------------------------------

using util::heap_bytes;

std::size_t weight_of(const InterferenceContext& ctx) {
  std::size_t total = sizeof(ctx) + heap_bytes(ctx.self_header);
  if (ctx.self_table) total += sizeof(ArrivalTable) + ctx.self_table->heap_bytes();
  for (const ChainInterference& info : ctx.others) {
    total += sizeof(info) + heap_bytes(info.header_segment);
    for (const Segment& s : info.segments) total += sizeof(s) + heap_bytes(s.tasks);
    if (info.critical.has_value()) total += heap_bytes(info.critical->tasks);
    if (info.table) total += sizeof(ArrivalTable) + info.table->heap_bytes();
  }
  return total;
}

/// The batched busy-window artifact of Pipeline::prime_busy_windows():
/// a marker whose *computation* resolves every member through the
/// normal per-member path (so members are stored, counted and reused
/// individually) under one coarse single-flight window.  The marker
/// itself only pins the member results it gathered.
struct BusyWindowBatch {
  std::vector<std::shared_ptr<const LatencyResult>> results;  ///< one per member
};

std::size_t weight_of(const BusyWindowBatch& batch) {
  // Members are weighed by their own store entries; the marker carries
  // only the pointer array.
  return sizeof(batch) + batch.results.capacity() * sizeof(batch.results[0]);
}

std::size_t weight_of(const LatencyResult& r) {
  return sizeof(r) + heap_bytes(r.busy_times) + heap_bytes(r.reason);
}

std::size_t weight_of(const TargetArtifacts& a) {
  std::size_t total = sizeof(a);
  for (const OverloadActiveSegments& pc : a.structure.per_chain) {
    total += sizeof(pc);
    for (const ActiveSegment& s : pc.active) total += sizeof(s) + heap_bytes(s.tasks);
  }
  for (const Combination& c : a.unschedulable) total += sizeof(c) + heap_bytes(c.segments);
  if (a.no_guarantee_reason.has_value()) total += heap_bytes(*a.no_guarantee_reason);
  return total;
}

std::size_t weight_of(const DmmResult& r) {
  return sizeof(r) + heap_bytes(r.omegas) + heap_bytes(r.reason);
}

std::size_t weight_of(const ilp::PackingSolution& s) {
  return sizeof(s) + heap_bytes(s.counts);
}

/// Canonical content encoding of a packing problem (the ILP stage key —
/// two targets or k values yielding the same capacities and incidence
/// share one solve).
std::string packing_key(const ilp::PackingProblem& problem, bool use_dfs) {
  std::ostringstream os;
  os << "ilp|dfs=" << use_dfs << ";cap=[";
  for (const Count c : problem.capacities) os << c << ',';
  os << "];items=[";
  for (const auto& item : problem.item_resources) {
    for (const int r : item) os << r << '.';
    os << '|';
  }
  os << ']';
  return os.str();
}

/// Per-request memo of one per-target stage-key family (State keeps one
/// per key kind).  Keys are pure functions of (system, options), both
/// fixed for the pipeline's lifetime, and serializing a slice walks the
/// chain's segment structure -- on key-heavy workloads (priority search
/// scoring thousands of candidate pipelines) building each target's key
/// once per request instead of once per stage access is a ~2x win.
/// get() builds *outside* the lock (holding it through serialization
/// would serialize the worker pool's key phase) and inserts first-wins:
/// racing builders produce equal strings, so the loser's copy is simply
/// dropped.  Returned references are stable (unordered_map nodes survive
/// rehashing, and entries are never erased).
class TargetKeyCache {
 public:
  template <typename Build>
  const std::string& get(int target, Build&& build) WHARF_EXCLUDES(mutex_) {
    {
      const util::MutexLock guard(mutex_);
      const auto it = map_.find(target);
      if (it != map_.end()) return it->second;
    }
    std::string built = build();
    const util::MutexLock guard(mutex_);
    std::string& slot = map_[target];
    if (slot.empty()) slot = std::move(built);
    return slot;
  }

 private:
  util::Mutex mutex_;
  std::unordered_map<int, std::string> map_ WHARF_GUARDED_BY(mutex_);
};

}  // namespace

// ---------------------------------------------------------------------
// Pipeline state
// ---------------------------------------------------------------------

/// State shared between a request's root pipeline and the budgeted
/// sub-pipelines its path queries spawn: the store session and the
/// request-wide diagnostics.
struct Pipeline::Shared {
  ArtifactStore* store = nullptr;
  std::uint64_t epoch = 0;
  int jobs = 1;
  util::Mutex diag_mutex;
  std::array<StageDiagnostics, kArtifactStageCount> diag WHARF_GUARDED_BY(diag_mutex) = {};
};

struct Pipeline::State {
  std::shared_ptr<const System> owned;  ///< engaged for budgeted sub-pipelines
  const System* system = nullptr;
  TwcaOptions options;
  std::shared_ptr<Shared> shared;
  /// Cross-pipeline memo of per-chain slice strings (owned by the
  /// session/evaluator).  Deliberately *not* in Shared: budgeted
  /// sub-pipelines substitute the target's deadline — a structural
  /// change under the SliceCache contract — so they key uncached.
  SliceCache* slices = nullptr;

  /// Request-local memo: one cell per (stage, key); the first visitor
  /// resolves the artifact through the store's single-flight resolve()
  /// while concurrent visitors of *this request* wait on the cell
  /// instead of duplicating the lookup — which is what keeps the
  /// per-stage counters deterministic under the worker pool.
  struct Cell {
    util::Mutex mutex;
    bool done WHARF_GUARDED_BY(mutex) = false;
    std::shared_ptr<const void> value WHARF_GUARDED_BY(mutex);
    std::exception_ptr error WHARF_GUARDED_BY(mutex);
  };
  util::Mutex memo_mutex;
  /// One map per stage: keys are large (a busy-window key serializes
  /// every interferer slice), so avoid re-prefixing/copying them per
  /// lookup just to disambiguate stages.
  std::array<std::unordered_map<std::string, std::shared_ptr<Cell>>, kArtifactStageCount> memo
      WHARF_GUARDED_BY(memo_mutex);

  /// Budgeted sub-pipelines, memoized per (target, deadline): a k-grid
  /// over one budget reuses the sub-pipeline's request-local memo
  /// instead of re-resolving (and re-counting) the same artifacts per k.
  util::Mutex budgeted_mutex;
  std::map<std::pair<int, Time>, std::unique_ptr<Pipeline>> budgeted_memo
      WHARF_GUARDED_BY(budgeted_mutex);

  /// Per-request cache of the per-target stage keys.  Keys are pure
  /// functions of (system, options), both fixed for the pipeline's
  /// lifetime, and serializing a slice walks the chain's segment
  /// structure — on key-heavy workloads (priority search scoring
  /// thousands of candidate pipelines) building each target's key once
  /// per request instead of once per stage access is a ~2x win.  The
  /// nested keys compose: overload reuses the busy-window part, dmm the
  /// overload part.  unordered_map nodes are stable, so returned
  /// references outlive later insertions.
  TargetKeyCache ifc_keys;
  TargetKeyCache bw_keys;
  TargetKeyCache bw_noov_keys;
  TargetKeyCache ov_keys;

  const std::string& interference_key_for(int target);
  const std::string& busy_window_key_for(int target, bool without_overload);
  const std::string& overload_key_for(int target);

  template <typename T, typename Make>
  std::shared_ptr<const T> acquire(ArtifactStage stage, const std::string& key, Make&& make);
};

const std::string& Pipeline::State::interference_key_for(int target) {
  return ifc_keys.get(target,
                      [&] { return wharf::interference_key(*system, target, slices); });
}

const std::string& Pipeline::State::busy_window_key_for(int target, bool without_overload) {
  return (without_overload ? bw_noov_keys : bw_keys).get(target, [&] {
    return wharf::busy_window_key(*system, target, options.analysis, without_overload, slices);
  });
}

const std::string& Pipeline::State::overload_key_for(int target) {
  // Resolve the busy-window part first (its own memo round), then
  // compose the overload key from it outside the lock.
  const std::string& busy_part = busy_window_key_for(target, /*without_overload=*/false);
  return ov_keys.get(target, [&] {
    return wharf::overload_key(*system, target, options, busy_part, slices);
  });
}

template <typename T, typename Make>
std::shared_ptr<const T> Pipeline::State::acquire(ArtifactStage stage, const std::string& key,
                                                  Make&& make) {
  std::shared_ptr<Cell> cell;
  {
    const util::MutexLock guard(memo_mutex);
    std::shared_ptr<Cell>& slot = memo[static_cast<std::size_t>(stage)][key];
    if (!slot) slot = std::make_shared<Cell>();
    cell = slot;
  }

  const util::MutexLock cell_guard(cell->mutex);
  if (cell->done) {
    if (cell->error) std::rethrow_exception(cell->error);
    return std::static_pointer_cast<const T>(cell->value);
  }

  ArtifactStore::Resolved resolved;
  try {
    resolved = shared->store->resolve(stage, key, [&] {
      auto value = std::make_shared<const T>(make());
      const std::size_t weight = weight_of(*value);
      return std::pair<std::shared_ptr<const void>, std::size_t>(std::move(value), weight);
    });
  } catch (...) {
    {
      const util::MutexLock guard(shared->diag_mutex);
      StageDiagnostics& diag = shared->diag[static_cast<std::size_t>(stage)];
      ++diag.lookups;
      ++diag.misses;
    }
    cell->error = std::current_exception();
    cell->done = true;
    throw;
  }
  {
    const util::MutexLock guard(shared->diag_mutex);
    StageDiagnostics& diag = shared->diag[static_cast<std::size_t>(stage)];
    ++diag.lookups;
    if (resolved.source == ArtifactStore::ResolveSource::kResident &&
        resolved.epoch < shared->epoch) {
      ++diag.hits;
    } else if (resolved.source == ArtifactStore::ResolveSource::kShared) {
      ++diag.shared;
    } else {
      ++diag.misses;
      diag.bytes_inserted += resolved.weight;
    }
  }
  cell->value = std::move(resolved.value);
  cell->done = true;
  return std::static_pointer_cast<const T>(cell->value);
}

// ---------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------

Pipeline::Pipeline(const System& system, const TwcaOptions& options, ArtifactStore& store,
                   std::uint64_t epoch, int jobs, SliceCache* slices)
    : state_(std::make_unique<State>()) {
  state_->system = &system;
  state_->options = options;
  state_->slices = slices;
  state_->shared = std::make_shared<Shared>();
  state_->shared->store = &store;
  state_->shared->epoch = epoch;
  state_->shared->jobs = jobs;
}

Pipeline::Pipeline(std::shared_ptr<const System> owned, const TwcaOptions& options,
                   std::shared_ptr<Shared> shared)
    : state_(std::make_unique<State>()) {
  state_->owned = std::move(owned);
  state_->system = state_->owned.get();
  state_->options = options;
  state_->shared = std::move(shared);
}

Pipeline::~Pipeline() = default;
Pipeline::Pipeline(Pipeline&&) noexcept = default;

const System& Pipeline::system() const { return *state_->system; }

std::shared_ptr<const InterferenceContext> Pipeline::interference(int target) {
  return state_->acquire<InterferenceContext>(
      ArtifactStage::kInterference, state_->interference_key_for(target),
      [&] { return make_interference_context(system(), target); });
}

std::shared_ptr<const LatencyResult> Pipeline::latency(int target) {
  return state_->acquire<LatencyResult>(
      ArtifactStage::kBusyWindow,
      state_->busy_window_key_for(target, /*without_overload=*/false), [&] {
        // Reuse the cached stage-1 context (and its flat arrival
        // tables) instead of rebuilding it inside the analysis.
        return latency_analysis(system(), *interference(target), state_->options.analysis);
      });
}

std::shared_ptr<const LatencyResult> Pipeline::latency_without_overload(int target) {
  return state_->acquire<LatencyResult>(
      ArtifactStage::kBusyWindow,
      state_->busy_window_key_for(target, /*without_overload=*/true),
      [&] {
        return latency_analysis(system(), *interference(target), state_->options.analysis,
                                system().overload_indices());
      });
}

void Pipeline::prime_busy_windows(const std::vector<std::pair<int, bool>>& members) {
  // Canonical member set: valid chain indices only (invalid ones surface
  // their errors in the individual queries), sorted and deduplicated so
  // the batch key is order-independent.
  std::vector<std::pair<int, bool>> sorted;
  sorted.reserve(members.size());
  for (const auto& member : members) {
    if (member.first >= 0 && member.first < system().size()) sorted.push_back(member);
  }
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  if (sorted.size() < 2) return;  // nothing to batch

  // Batch key: the member busy-window keys joined — the same member set
  // over the same model slices names the same artifact.
  std::string key = "bwb|";
  for (const auto& [target, without_overload] : sorted) {
    key += state_->busy_window_key_for(target, without_overload);
    key += '\x1f';
  }
  try {
    (void)state_->acquire<BusyWindowBatch>(ArtifactStage::kBusyWindow, key, [&] {
      BusyWindowBatch batch;
      batch.results.reserve(sorted.size());
      for (const auto& [target, without_overload] : sorted) {
        batch.results.push_back(without_overload ? latency_without_overload(target)
                                                 : latency(target));
      }
      return batch;
    });
  } catch (...) {
    // A failing member poisons only the batch marker; the individual
    // queries re-resolve the member and report its own error.
  }
}

std::shared_ptr<const TargetArtifacts> Pipeline::overload_artifacts(int target) {
  return state_->acquire<TargetArtifacts>(
      ArtifactStage::kOverload, state_->overload_key_for(target), [&] {
        return build_target_artifacts(system(), target, *interference(target), *latency(target),
                                      state_->options);
      });
}

DmmResult Pipeline::dmm(int target, Count k) {
  // Same preconditions (and messages) as TwcaAnalyzer::dmm, checked
  // before any key is derived.
  WHARF_EXPECT(k >= 1, "dmm requires k >= 1, got " << k);
  WHARF_EXPECT(target >= 0 && target < system().size(),
               "chain index " << target << " out of range [0, " << system().size() << ")");
  WHARF_EXPECT(!system().chain(target).is_overload(),
               "DMM target '" << system().chain(target).name()
                              << "' must not be an overload chain");

  const auto result = state_->acquire<DmmResult>(
      ArtifactStage::kDmmCurve,
      dmm_key(k, state_->options, state_->overload_key_for(target)), [&] {
        const auto full = latency(target);
        const auto artifacts = overload_artifacts(target);
        const PackingSolver solver = [this](const ilp::PackingProblem& problem) {
          return *state_->acquire<ilp::PackingSolution>(
              ArtifactStage::kIlp, packing_key(problem, state_->options.use_dfs_packer), [&] {
                return ilp::solve_packing_split(problem, state_->shared->jobs,
                                                state_->options.use_dfs_packer);
              });
        };
        return dmm_from_artifacts(system(), target, *full, *artifacts, k, state_->options,
                                  solver);
      });
  return *result;
}

std::vector<DmmResult> Pipeline::dmm_curve(int target, const std::vector<Count>& ks) {
  std::vector<DmmResult> out;
  out.reserve(ks.size());
  for (const Count k : ks) out.push_back(dmm(target, k));
  return out;
}

Pipeline& Pipeline::budgeted(int target, Time deadline) {
  const util::MutexLock guard(state_->budgeted_mutex);
  std::unique_ptr<Pipeline>& slot = state_->budgeted_memo[{target, deadline}];
  if (!slot) {
    auto owned = std::make_shared<const System>(system().with_deadline(target, deadline));
    slot = std::unique_ptr<Pipeline>(
        new Pipeline(std::move(owned), state_->options, state_->shared));
  }
  return *slot;
}

namespace {

/// Oracle plugging the pipeline into the core path composition: plain
/// latencies come from the root pipeline, budgeted dmm queries from
/// sub-pipelines over the deadline-substituted system.
class PipelineOracleImpl final : public PathChainOracle {
 public:
  explicit PipelineOracleImpl(Pipeline& root) : root_(root) {}

  LatencyResult latency(int chain) override { return *root_.latency(chain); }

  DmmResult dmm_with_budget(int chain, Time budget, Count k) override {
    return root_.budgeted(chain, budget).dmm(chain, k);
  }

 private:
  Pipeline& root_;
};

}  // namespace

PathLatencyResult Pipeline::path_latency(const PathSpec& path) {
  PipelineOracleImpl oracle{*this};
  return wharf::path_latency(system(), path, oracle);
}

PathDmmResult Pipeline::path_dmm(const PathSpec& path, Count k) {
  PipelineOracleImpl oracle{*this};
  return wharf::path_dmm(system(), path, k, oracle);
}

std::array<StageDiagnostics, kArtifactStageCount> Pipeline::stage_diagnostics() const {
  const util::MutexLock guard(state_->shared->diag_mutex);
  return state_->shared->diag;
}

}  // namespace wharf
