#include "engine/pipeline.hpp"

#include <exception>
#include <map>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "core/model_slice.hpp"
#include "util/expect.hpp"
#include "util/weight.hpp"

namespace wharf {

namespace {

// ---------------------------------------------------------------------
// Artifact weights (bytes resident per artifact type)
// ---------------------------------------------------------------------

using util::heap_bytes;

std::size_t weight_of(const InterferenceContext& ctx) {
  std::size_t total = sizeof(ctx) + heap_bytes(ctx.self_header);
  for (const ChainInterference& info : ctx.others) {
    total += sizeof(info) + heap_bytes(info.header_segment);
    for (const Segment& s : info.segments) total += sizeof(s) + heap_bytes(s.tasks);
    if (info.critical.has_value()) total += heap_bytes(info.critical->tasks);
  }
  return total;
}

std::size_t weight_of(const LatencyResult& r) {
  return sizeof(r) + heap_bytes(r.busy_times) + heap_bytes(r.reason);
}

std::size_t weight_of(const TargetArtifacts& a) {
  std::size_t total = sizeof(a);
  for (const OverloadActiveSegments& pc : a.structure.per_chain) {
    total += sizeof(pc);
    for (const ActiveSegment& s : pc.active) total += sizeof(s) + heap_bytes(s.tasks);
  }
  for (const Combination& c : a.unschedulable) total += sizeof(c) + heap_bytes(c.segments);
  if (a.no_guarantee_reason.has_value()) total += heap_bytes(*a.no_guarantee_reason);
  return total;
}

std::size_t weight_of(const DmmResult& r) {
  return sizeof(r) + heap_bytes(r.omegas) + heap_bytes(r.reason);
}

std::size_t weight_of(const ilp::PackingSolution& s) {
  return sizeof(s) + heap_bytes(s.counts);
}

/// Canonical content encoding of a packing problem (the ILP stage key —
/// two targets or k values yielding the same capacities and incidence
/// share one solve).
std::string packing_key(const ilp::PackingProblem& problem, bool use_dfs) {
  std::ostringstream os;
  os << "ilp|dfs=" << use_dfs << ";cap=[";
  for (const Count c : problem.capacities) os << c << ',';
  os << "];items=[";
  for (const auto& item : problem.item_resources) {
    for (const int r : item) os << r << '.';
    os << '|';
  }
  os << ']';
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------
// Pipeline state
// ---------------------------------------------------------------------

/// State shared between a request's root pipeline and the budgeted
/// sub-pipelines its path queries spawn: the store session and the
/// request-wide diagnostics.
struct Pipeline::Shared {
  ArtifactStore* store = nullptr;
  std::uint64_t epoch = 0;
  int jobs = 1;
  std::mutex diag_mutex;
  std::array<StageDiagnostics, kArtifactStageCount> diag{};
};

struct Pipeline::State {
  std::shared_ptr<const System> owned;  ///< engaged for budgeted sub-pipelines
  const System* system = nullptr;
  TwcaOptions options;
  std::shared_ptr<Shared> shared;

  /// Request-local single-flight memo: one cell per (stage, key); the
  /// first visitor resolves the artifact (store lookup, then compute)
  /// while concurrent visitors wait on the cell instead of duplicating
  /// the lookup — which is what keeps the per-stage counters
  /// deterministic under the worker pool.
  struct Cell {
    std::mutex mutex;
    bool done = false;
    std::shared_ptr<const void> value;
    std::exception_ptr error;
  };
  std::mutex memo_mutex;
  std::unordered_map<std::string, std::shared_ptr<Cell>> memo;

  /// Budgeted sub-pipelines, memoized per (target, deadline): a k-grid
  /// over one budget reuses the sub-pipeline's request-local memo
  /// instead of re-resolving (and re-counting) the same artifacts per k.
  std::mutex budgeted_mutex;
  std::map<std::pair<int, Time>, std::unique_ptr<Pipeline>> budgeted_memo;

  template <typename T, typename Make>
  std::shared_ptr<const T> acquire(ArtifactStage stage, const std::string& key, Make&& make);
};

template <typename T, typename Make>
std::shared_ptr<const T> Pipeline::State::acquire(ArtifactStage stage, const std::string& key,
                                                  Make&& make) {
  std::shared_ptr<Cell> cell;
  {
    const std::lock_guard<std::mutex> guard(memo_mutex);
    std::shared_ptr<Cell>& slot =
        memo[std::string(to_string(stage)) + '|' + key];
    if (!slot) slot = std::make_shared<Cell>();
    cell = slot;
  }

  const std::lock_guard<std::mutex> cell_guard(cell->mutex);
  if (cell->done) {
    if (cell->error) std::rethrow_exception(cell->error);
    return std::static_pointer_cast<const T>(cell->value);
  }

  const auto found = shared->store->lookup(stage, key);
  {
    const std::lock_guard<std::mutex> guard(shared->diag_mutex);
    StageDiagnostics& diag = shared->diag[static_cast<std::size_t>(stage)];
    ++diag.lookups;
    if (found.has_value() && found->epoch < shared->epoch) {
      ++diag.hits;
    } else {
      ++diag.misses;
    }
  }
  if (found.has_value()) {
    cell->value = found->value;
    cell->done = true;
    return std::static_pointer_cast<const T>(cell->value);
  }

  std::shared_ptr<const T> value;
  try {
    value = std::make_shared<const T>(make());
  } catch (...) {
    cell->error = std::current_exception();
    cell->done = true;
    throw;
  }
  const std::size_t weight = weight_of(*value);
  shared->store->insert(stage, key, value, weight);
  {
    const std::lock_guard<std::mutex> guard(shared->diag_mutex);
    shared->diag[static_cast<std::size_t>(stage)].bytes_inserted += weight;
  }
  cell->value = value;
  cell->done = true;
  return value;
}

// ---------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------

Pipeline::Pipeline(const System& system, const TwcaOptions& options, ArtifactStore& store,
                   std::uint64_t epoch, int jobs)
    : state_(std::make_unique<State>()) {
  state_->system = &system;
  state_->options = options;
  state_->shared = std::make_shared<Shared>();
  state_->shared->store = &store;
  state_->shared->epoch = epoch;
  state_->shared->jobs = jobs;
}

Pipeline::Pipeline(std::shared_ptr<const System> owned, const TwcaOptions& options,
                   std::shared_ptr<Shared> shared)
    : state_(std::make_unique<State>()) {
  state_->owned = std::move(owned);
  state_->system = state_->owned.get();
  state_->options = options;
  state_->shared = std::move(shared);
}

Pipeline::~Pipeline() = default;
Pipeline::Pipeline(Pipeline&&) noexcept = default;

const System& Pipeline::system() const { return *state_->system; }

std::shared_ptr<const InterferenceContext> Pipeline::interference(int target) {
  return state_->acquire<InterferenceContext>(
      ArtifactStage::kInterference, interference_key(system(), target),
      [&] { return make_interference_context(system(), target); });
}

std::shared_ptr<const LatencyResult> Pipeline::latency(int target) {
  return state_->acquire<LatencyResult>(
      ArtifactStage::kBusyWindow,
      busy_window_key(system(), target, state_->options.analysis, /*without_overload=*/false),
      [&] { return latency_analysis(system(), target, state_->options.analysis); });
}

std::shared_ptr<const LatencyResult> Pipeline::latency_without_overload(int target) {
  return state_->acquire<LatencyResult>(
      ArtifactStage::kBusyWindow,
      busy_window_key(system(), target, state_->options.analysis, /*without_overload=*/true),
      [&] {
        return latency_analysis(system(), target, state_->options.analysis,
                                system().overload_indices());
      });
}

std::shared_ptr<const TargetArtifacts> Pipeline::overload_artifacts(int target) {
  return state_->acquire<TargetArtifacts>(
      ArtifactStage::kOverload, overload_key(system(), target, state_->options), [&] {
        return build_target_artifacts(system(), target, *interference(target), *latency(target),
                                      state_->options);
      });
}

DmmResult Pipeline::dmm(int target, Count k) {
  // Same preconditions (and messages) as TwcaAnalyzer::dmm, checked
  // before any key is derived.
  WHARF_EXPECT(k >= 1, "dmm requires k >= 1, got " << k);
  WHARF_EXPECT(target >= 0 && target < system().size(),
               "chain index " << target << " out of range [0, " << system().size() << ")");
  WHARF_EXPECT(!system().chain(target).is_overload(),
               "DMM target '" << system().chain(target).name()
                              << "' must not be an overload chain");

  const auto result = state_->acquire<DmmResult>(
      ArtifactStage::kDmmCurve, dmm_key(system(), target, k, state_->options), [&] {
        const auto full = latency(target);
        const auto artifacts = overload_artifacts(target);
        const PackingSolver solver = [this](const ilp::PackingProblem& problem) {
          return *state_->acquire<ilp::PackingSolution>(
              ArtifactStage::kIlp, packing_key(problem, state_->options.use_dfs_packer), [&] {
                return ilp::solve_packing_split(problem, state_->shared->jobs,
                                                state_->options.use_dfs_packer);
              });
        };
        return dmm_from_artifacts(system(), target, *full, *artifacts, k, state_->options,
                                  solver);
      });
  return *result;
}

std::vector<DmmResult> Pipeline::dmm_curve(int target, const std::vector<Count>& ks) {
  std::vector<DmmResult> out;
  out.reserve(ks.size());
  for (const Count k : ks) out.push_back(dmm(target, k));
  return out;
}

Pipeline& Pipeline::budgeted(int target, Time deadline) {
  const std::lock_guard<std::mutex> guard(state_->budgeted_mutex);
  std::unique_ptr<Pipeline>& slot = state_->budgeted_memo[{target, deadline}];
  if (!slot) {
    auto owned = std::make_shared<const System>(system().with_deadline(target, deadline));
    slot = std::unique_ptr<Pipeline>(
        new Pipeline(std::move(owned), state_->options, state_->shared));
  }
  return *slot;
}

namespace {

/// Oracle plugging the pipeline into the core path composition: plain
/// latencies come from the root pipeline, budgeted dmm queries from
/// sub-pipelines over the deadline-substituted system.
class PipelineOracleImpl final : public PathChainOracle {
 public:
  explicit PipelineOracleImpl(Pipeline& root) : root_(root) {}

  LatencyResult latency(int chain) override { return *root_.latency(chain); }

  DmmResult dmm_with_budget(int chain, Time budget, Count k) override {
    return root_.budgeted(chain, budget).dmm(chain, k);
  }

 private:
  Pipeline& root_;
};

}  // namespace

PathLatencyResult Pipeline::path_latency(const PathSpec& path) {
  PipelineOracleImpl oracle{*this};
  return wharf::path_latency(system(), path, oracle);
}

PathDmmResult Pipeline::path_dmm(const PathSpec& path, Count k) {
  PipelineOracleImpl oracle{*this};
  return wharf::path_dmm(system(), path, k, oracle);
}

std::array<StageDiagnostics, kArtifactStageCount> Pipeline::stage_diagnostics() const {
  const std::lock_guard<std::mutex> guard(state_->shared->diag_mutex);
  return state_->shared->diag;
}

}  // namespace wharf
