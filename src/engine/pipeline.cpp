#include "engine/pipeline.hpp"

#include <algorithm>
#include <exception>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "core/model_slice.hpp"
#include "engine/artifact_types.hpp"
#include "util/expect.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace wharf {

namespace {

// ---------------------------------------------------------------------
// Artifact type tags (artifact_types.hpp holds the weights and the tag
// enum; this maps the stage value types onto their persistent tags so
// acquire<T> can record them without per-call-site plumbing)
// ---------------------------------------------------------------------

template <typename T>
constexpr ArtifactType artifact_tag = ArtifactType::kUntyped;
template <>
constexpr ArtifactType artifact_tag<InterferenceContext> = ArtifactType::kInterferenceContext;
template <>
constexpr ArtifactType artifact_tag<LatencyResult> = ArtifactType::kLatencyResult;
template <>
constexpr ArtifactType artifact_tag<TargetArtifacts> = ArtifactType::kTargetArtifacts;
template <>
constexpr ArtifactType artifact_tag<DmmResult> = ArtifactType::kDmmResult;
template <>
constexpr ArtifactType artifact_tag<ilp::PackingSolution> = ArtifactType::kPackingSolution;
template <>
constexpr ArtifactType artifact_tag<BusyWindowBatch> = ArtifactType::kBusyWindowBatch;

/// Canonical content encoding of a packing problem (the ILP stage key —
/// two targets or k values yielding the same capacities and incidence
/// share one solve).
std::string packing_key(const ilp::PackingProblem& problem, bool use_dfs) {
  std::ostringstream os;
  os << "ilp|dfs=" << use_dfs << ";cap=[";
  for (const Count c : problem.capacities) os << c << ',';
  os << "];items=[";
  for (const auto& item : problem.item_resources) {
    for (const int r : item) os << r << '.';
    os << '|';
  }
  os << ']';
  return os.str();
}

/// Per-request memo of one per-target stage-key family (State keeps one
/// per key kind).  Keys are pure functions of (system, options), both
/// fixed for the pipeline's lifetime, and serializing a slice walks the
/// chain's segment structure -- on key-heavy workloads (priority search
/// scoring thousands of candidate pipelines) building each target's key
/// once per request instead of once per stage access is a ~2x win.
/// get() builds *outside* the lock (holding it through serialization
/// would serialize the worker pool's key phase) and inserts first-wins:
/// racing builders produce equal strings, so the loser's copy is simply
/// dropped.  Returned references are stable (unordered_map nodes survive
/// rehashing, and entries are never erased).
class TargetKeyCache {
 public:
  template <typename Build>
  const std::string& get(int target, Build&& build) WHARF_EXCLUDES(mutex_) {
    {
      const util::MutexLock guard(mutex_);
      const auto it = map_.find(target);
      if (it != map_.end()) return it->second;
    }
    std::string built = build();
    const util::MutexLock guard(mutex_);
    std::string& slot = map_[target];
    if (slot.empty()) slot = std::move(built);
    return slot;
  }

 private:
  util::Mutex mutex_;
  std::unordered_map<int, std::string> map_ WHARF_GUARDED_BY(mutex_);
};

}  // namespace

// ---------------------------------------------------------------------
// Pipeline state
// ---------------------------------------------------------------------

/// State shared between a request's root pipeline and the budgeted
/// sub-pipelines its path queries spawn: the store session and the
/// request-wide diagnostics.
struct Pipeline::Shared {
  ArtifactStore* store = nullptr;
  std::uint64_t epoch = 0;
  int jobs = 1;
  util::Mutex diag_mutex;
  std::array<StageDiagnostics, kArtifactStageCount> diag WHARF_GUARDED_BY(diag_mutex) = {};
};

struct Pipeline::State {
  std::shared_ptr<const System> owned;  ///< engaged for budgeted sub-pipelines
  const System* system = nullptr;
  TwcaOptions options;
  std::shared_ptr<Shared> shared;
  /// Cross-pipeline memo of per-chain slice strings (owned by the
  /// session/evaluator).  Deliberately *not* in Shared: budgeted
  /// sub-pipelines substitute the target's deadline — a structural
  /// change under the SliceCache contract — so they key uncached.
  SliceCache* slices = nullptr;
  /// The store's fragment intern table: every key this pipeline builds
  /// is a compact id sequence against it (model_slice.hpp), so store
  /// lookups hash a handful of bytes instead of kilobyte slice text.
  KeyInterner* interner = nullptr;

  /// Request-local memo: one cell per (stage, key); the first visitor
  /// resolves the artifact through the store's single-flight resolve()
  /// while concurrent visitors of *this request* wait on the cell
  /// instead of duplicating the lookup — which is what keeps the
  /// per-stage counters deterministic under the worker pool.
  struct Cell {
    util::Mutex mutex;
    bool done WHARF_GUARDED_BY(mutex) = false;
    std::shared_ptr<const void> value WHARF_GUARDED_BY(mutex);
    std::exception_ptr error WHARF_GUARDED_BY(mutex);
  };
  util::Mutex memo_mutex;
  /// One map per stage: keys are large (a busy-window key serializes
  /// every interferer slice), so avoid re-prefixing/copying them per
  /// lookup just to disambiguate stages.
  std::array<std::unordered_map<std::string, std::shared_ptr<Cell>>, kArtifactStageCount> memo
      WHARF_GUARDED_BY(memo_mutex);

  /// Budgeted sub-pipelines, memoized per (target, deadline): a k-grid
  /// over one budget reuses the sub-pipeline's request-local memo
  /// instead of re-resolving (and re-counting) the same artifacts per k.
  util::Mutex budgeted_mutex;
  std::map<std::pair<int, Time>, std::unique_ptr<Pipeline>> budgeted_memo
      WHARF_GUARDED_BY(budgeted_mutex);

  /// Per-request cache of the per-target stage keys.  Keys are pure
  /// functions of (system, options), both fixed for the pipeline's
  /// lifetime, and serializing a slice walks the chain's segment
  /// structure — on key-heavy workloads (priority search scoring
  /// thousands of candidate pipelines) building each target's key once
  /// per request instead of once per stage access is a ~2x win.  The
  /// nested keys compose: overload reuses the busy-window part, dmm the
  /// overload part.  unordered_map nodes are stable, so returned
  /// references outlive later insertions.
  TargetKeyCache ifc_keys;
  TargetKeyCache bw_keys;
  TargetKeyCache bw_noov_keys;
  TargetKeyCache ov_keys;

  const std::string& interference_key_for(int target);
  const std::string& busy_window_key_for(int target, bool without_overload);
  const std::string& overload_key_for(int target);

  template <typename T, typename Make>
  std::shared_ptr<const T> acquire(ArtifactStage stage, const std::string& key, Make&& make);
};

const std::string& Pipeline::State::interference_key_for(int target) {
  return ifc_keys.get(
      target, [&] { return wharf::interference_key(*system, target, slices, interner); });
}

const std::string& Pipeline::State::busy_window_key_for(int target, bool without_overload) {
  return (without_overload ? bw_noov_keys : bw_keys).get(target, [&] {
    return wharf::busy_window_key(*system, target, options.analysis, without_overload, slices,
                                  interner);
  });
}

const std::string& Pipeline::State::overload_key_for(int target) {
  // Resolve the busy-window part first (its own memo round), then
  // compose the overload key from it outside the lock.
  const std::string& busy_part = busy_window_key_for(target, /*without_overload=*/false);
  return ov_keys.get(target, [&] {
    return wharf::overload_key(*system, target, options, busy_part, slices, interner);
  });
}

template <typename T, typename Make>
std::shared_ptr<const T> Pipeline::State::acquire(ArtifactStage stage, const std::string& key,
                                                  Make&& make) {
  std::shared_ptr<Cell> cell;
  {
    const util::MutexLock guard(memo_mutex);
    std::shared_ptr<Cell>& slot = memo[static_cast<std::size_t>(stage)][key];
    if (!slot) slot = std::make_shared<Cell>();
    cell = slot;
  }

  const util::MutexLock cell_guard(cell->mutex);
  if (cell->done) {
    if (cell->error) std::rethrow_exception(cell->error);
    return std::static_pointer_cast<const T>(cell->value);
  }

  ArtifactStore::Resolved resolved;
  try {
    resolved = shared->store->resolve(
        stage, key,
        [&] {
          auto value = std::make_shared<const T>(make());
          const std::size_t weight = weight_of(*value);
          return std::pair<std::shared_ptr<const void>, std::size_t>(std::move(value), weight);
        },
        static_cast<std::uint8_t>(artifact_tag<T>));
  } catch (...) {
    {
      const util::MutexLock guard(shared->diag_mutex);
      StageDiagnostics& diag = shared->diag[static_cast<std::size_t>(stage)];
      ++diag.lookups;
      ++diag.misses;
    }
    cell->error = std::current_exception();
    cell->done = true;
    throw;
  }
  {
    const util::MutexLock guard(shared->diag_mutex);
    StageDiagnostics& diag = shared->diag[static_cast<std::size_t>(stage)];
    ++diag.lookups;
    if (resolved.source == ArtifactStore::ResolveSource::kResident &&
        resolved.epoch < shared->epoch) {
      ++diag.hits;
    } else if (resolved.source == ArtifactStore::ResolveSource::kShared) {
      ++diag.shared;
    } else {
      ++diag.misses;
      diag.bytes_inserted += resolved.weight;
    }
  }
  cell->value = std::move(resolved.value);
  cell->done = true;
  return std::static_pointer_cast<const T>(cell->value);
}

// ---------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------

Pipeline::Pipeline(const System& system, const TwcaOptions& options, ArtifactStore& store,
                   std::uint64_t epoch, int jobs, SliceCache* slices)
    : state_(std::make_unique<State>()) {
  state_->system = &system;
  state_->options = options;
  state_->slices = slices;
  state_->interner = &store.interner();
  state_->shared = std::make_shared<Shared>();
  state_->shared->store = &store;
  state_->shared->epoch = epoch;
  state_->shared->jobs = jobs;
}

Pipeline::Pipeline(std::shared_ptr<const System> owned, const TwcaOptions& options,
                   std::shared_ptr<Shared> shared)
    : state_(std::make_unique<State>()) {
  state_->owned = std::move(owned);
  state_->system = state_->owned.get();
  state_->options = options;
  state_->shared = std::move(shared);
  state_->interner = &state_->shared->store->interner();
}

Pipeline::~Pipeline() = default;
Pipeline::Pipeline(Pipeline&&) noexcept = default;

const System& Pipeline::system() const { return *state_->system; }

std::shared_ptr<const InterferenceContext> Pipeline::interference(int target) {
  return state_->acquire<InterferenceContext>(
      ArtifactStage::kInterference, state_->interference_key_for(target),
      [&] { return make_interference_context(system(), target); });
}

std::shared_ptr<const LatencyResult> Pipeline::latency(int target) {
  return state_->acquire<LatencyResult>(
      ArtifactStage::kBusyWindow,
      state_->busy_window_key_for(target, /*without_overload=*/false), [&] {
        // Reuse the cached stage-1 context (and its flat arrival
        // tables) instead of rebuilding it inside the analysis.
        return latency_analysis(system(), *interference(target), state_->options.analysis);
      });
}

std::shared_ptr<const LatencyResult> Pipeline::latency_without_overload(int target) {
  return state_->acquire<LatencyResult>(
      ArtifactStage::kBusyWindow,
      state_->busy_window_key_for(target, /*without_overload=*/true),
      [&] {
        return latency_analysis(system(), *interference(target), state_->options.analysis,
                                system().overload_indices());
      });
}

void Pipeline::prime_busy_windows(const std::vector<std::pair<int, bool>>& members) {
  // Canonical member set: valid chain indices only (invalid ones surface
  // their errors in the individual queries), sorted and deduplicated so
  // the batch key is order-independent.
  std::vector<std::pair<int, bool>> sorted;
  sorted.reserve(members.size());
  for (const auto& member : members) {
    if (member.first >= 0 && member.first < system().size()) sorted.push_back(member);
  }
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  if (sorted.size() < 2) return;  // nothing to batch

  // Batch key: the member busy-window keys joined — the same member set
  // over the same model slices names the same artifact.  Member keys are
  // interned id sequences, so a header fragment pins the member count
  // and each member's byte length (the raw concatenation alone would be
  // ambiguous between different splits of the same id stream).
  std::string header = "bwb|n=";
  header += std::to_string(sorted.size());
  header += ";lens=";
  std::string member_bytes;
  for (const auto& [target, without_overload] : sorted) {
    const std::string& member = state_->busy_window_key_for(target, without_overload);
    header += std::to_string(member.size());
    header += ',';
    member_bytes += member;
  }
  std::string key;
  key.reserve(KeyInterner::kIdBytes + member_bytes.size());
  KeyInterner::append_id(key, state_->interner->intern(header));
  key += member_bytes;
  try {
    (void)state_->acquire<BusyWindowBatch>(ArtifactStage::kBusyWindow, key, [&] {
      BusyWindowBatch batch;
      batch.results.reserve(sorted.size());
      for (const auto& [target, without_overload] : sorted) {
        batch.results.push_back(without_overload ? latency_without_overload(target)
                                                 : latency(target));
      }
      return batch;
    });
  } catch (...) {
    // A failing member poisons only the batch marker; the individual
    // queries re-resolve the member and report its own error.
  }
}

std::shared_ptr<const TargetArtifacts> Pipeline::overload_artifacts(int target) {
  return state_->acquire<TargetArtifacts>(
      ArtifactStage::kOverload, state_->overload_key_for(target), [&] {
        return build_target_artifacts(system(), target, *interference(target), *latency(target),
                                      state_->options);
      });
}

DmmResult Pipeline::dmm(int target, Count k) {
  // Same preconditions (and messages) as TwcaAnalyzer::dmm, checked
  // before any key is derived.
  WHARF_EXPECT(k >= 1, "dmm requires k >= 1, got " << k);
  WHARF_EXPECT(target >= 0 && target < system().size(),
               "chain index " << target << " out of range [0, " << system().size() << ")");
  WHARF_EXPECT(!system().chain(target).is_overload(),
               "DMM target '" << system().chain(target).name()
                              << "' must not be an overload chain");

  const auto result = state_->acquire<DmmResult>(
      ArtifactStage::kDmmCurve,
      dmm_key(k, state_->options, state_->overload_key_for(target), state_->interner), [&] {
        const auto full = latency(target);
        const auto artifacts = overload_artifacts(target);
        const PackingSolver solver = [this](const ilp::PackingProblem& problem) {
          // The content encoding is interned whole (one id): packing
          // problems repeat across targets and k values, so the long
          // text is hashed once and every later lookup keys 4 bytes.
          std::string key;
          KeyInterner::append_id(
              key, state_->interner->intern(
                       packing_key(problem, state_->options.use_dfs_packer)));
          return *state_->acquire<ilp::PackingSolution>(ArtifactStage::kIlp, key, [&] {
            return ilp::solve_packing_split(problem, state_->shared->jobs,
                                            state_->options.use_dfs_packer);
          });
        };
        return dmm_from_artifacts(system(), target, *full, *artifacts, k, state_->options,
                                  solver);
      });
  return *result;
}

std::vector<DmmResult> Pipeline::dmm_curve(int target, const std::vector<Count>& ks) {
  std::vector<DmmResult> out;
  out.reserve(ks.size());
  for (const Count k : ks) out.push_back(dmm(target, k));
  return out;
}

Pipeline& Pipeline::budgeted(int target, Time deadline) {
  const util::MutexLock guard(state_->budgeted_mutex);
  std::unique_ptr<Pipeline>& slot = state_->budgeted_memo[{target, deadline}];
  if (!slot) {
    auto owned = std::make_shared<const System>(system().with_deadline(target, deadline));
    slot = std::unique_ptr<Pipeline>(
        new Pipeline(std::move(owned), state_->options, state_->shared));
  }
  return *slot;
}

namespace {

/// Oracle plugging the pipeline into the core path composition: plain
/// latencies come from the root pipeline, budgeted dmm queries from
/// sub-pipelines over the deadline-substituted system.
class PipelineOracleImpl final : public PathChainOracle {
 public:
  explicit PipelineOracleImpl(Pipeline& root) : root_(root) {}

  LatencyResult latency(int chain) override { return *root_.latency(chain); }

  DmmResult dmm_with_budget(int chain, Time budget, Count k) override {
    return root_.budgeted(chain, budget).dmm(chain, k);
  }

 private:
  Pipeline& root_;
};

}  // namespace

PathLatencyResult Pipeline::path_latency(const PathSpec& path) {
  PipelineOracleImpl oracle{*this};
  return wharf::path_latency(system(), path, oracle);
}

PathDmmResult Pipeline::path_dmm(const PathSpec& path, Count k) {
  PipelineOracleImpl oracle{*this};
  return wharf::path_dmm(system(), path, k, oracle);
}

std::array<StageDiagnostics, kArtifactStageCount> Pipeline::stage_diagnostics() const {
  const util::MutexLock guard(state_->shared->diag_mutex);
  return state_->shared->diag;
}

}  // namespace wharf
