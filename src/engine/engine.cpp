#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <utility>

#include "engine/session.hpp"
#include "io/json.hpp"
#include "util/mutex.hpp"
#include "util/strings.hpp"
#include "util/thread_annotations.hpp"
#include "util/worker_pool.hpp"

namespace wharf {

namespace {

/// True when the DMM-carrying payload of a successful answer reports
/// kNoGuarantee anywhere.
bool answer_has_no_guarantee(const QueryResult& r) {
  if (const auto* dmm = std::get_if<DmmAnswer>(&r.answer)) {
    return std::any_of(dmm->curve.begin(), dmm->curve.end(), [](const DmmResult& d) {
      return d.status == DmmStatus::kNoGuarantee;
    });
  }
  if (const auto* wh = std::get_if<WeaklyHardAnswer>(&r.answer)) {
    return wh->dmm_status == DmmStatus::kNoGuarantee;
  }
  if (const auto* lat = std::get_if<LatencyAnswer>(&r.answer)) {
    return !lat->result.bounded;
  }
  if (const auto* path = std::get_if<PathLatencyAnswer>(&r.answer)) {
    return !path->result.bounded;
  }
  if (const auto* pd = std::get_if<PathDmmAnswer>(&r.answer)) {
    return std::any_of(pd->curve.begin(), pd->curve.end(), [](const PathDmmResult& d) {
      return d.status == DmmStatus::kNoGuarantee;
    });
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------
// AnalysisRequest / AnalysisReport
// ---------------------------------------------------------------------

AnalysisRequest AnalysisRequest::standard(System system, std::vector<Count> ks,
                                          TwcaOptions options) {
  if (ks.empty()) ks.push_back(10);
  AnalysisRequest request{std::move(system), options, {}};
  for (const int c : request.system.regular_indices()) {
    const std::string& name = request.system.chain(c).name();
    request.queries.push_back(LatencyQuery{name, /*without_overload=*/false});
    request.queries.push_back(LatencyQuery{name, /*without_overload=*/true});
    if (request.system.chain(c).deadline().has_value()) {
      request.queries.push_back(DmmQuery{name, ks});
    }
  }
  return request;
}

bool AnalysisReport::ok() const {
  return std::all_of(results.begin(), results.end(),
                     [](const QueryResult& r) { return r.ok(); });
}

Status AnalysisReport::worst_status() const {
  for (const QueryResult& r : results) {
    if (!r.ok()) return r.status;
  }
  for (const QueryResult& r : results) {
    if (answer_has_no_guarantee(r)) {
      return Status::no_guarantee(
          "analysis completed but cannot bound all misses (see per-query results)");
    }
  }
  return Status::ok();
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

struct Engine::Impl {
  EngineOptions options;
  ArtifactStore store;
  /// Startup snapshot-load outcome; written once in the constructor,
  /// read-only afterwards (so lock-free access is safe).
  PersistenceStats persistence;

  /// Engine-lifetime lookup totals, accumulated from per-request
  /// diagnostics after every served request.
  util::Mutex totals_mutex;
  std::size_t total_hits WHARF_GUARDED_BY(totals_mutex) = 0;
  std::size_t total_misses WHARF_GUARDED_BY(totals_mutex) = 0;
  std::size_t total_shared WHARF_GUARDED_BY(totals_mutex) = 0;

  /// Periodic persist-on-idle (EngineOptions::persist_interval_ms): one
  /// background thread that re-spills the snapshot whenever artifacts
  /// were inserted since the last save, so an abruptly killed process
  /// still leaves a warm snapshot.  Joined (never detached) on
  /// destruction; the condvar interrupts the sleep so shutdown is
  /// immediate.
  util::Mutex persist_mutex;
  util::CondVar persist_cv;
  bool persist_stop WHARF_GUARDED_BY(persist_mutex) = false;
  std::thread persist_thread;

  explicit Impl(EngineOptions opts) : options(std::move(opts)), store(options.cache_bytes) {
    if (options.store_dir.empty()) return;
    // Best-effort warm start: an unwritable dir or corrupt snapshot
    // leaves the engine cold and fully functional.
    (void)ensure_store_dir(options.store_dir);
    const StoreLoadResult loaded = store.load(store_snapshot_path(options.store_dir));
    persistence.persisted_artifacts = loaded.records_loaded;
    persistence.load_skipped_corrupt = loaded.records_skipped;
    persistence.load_reason = loaded.reason;
    if (options.persist_interval_ms > 0) {
      persist_thread = std::thread([this] { persist_loop(); });
    }
  }

  ~Impl() {
    if (!persist_thread.joinable()) return;
    {
      const util::MutexLock guard(persist_mutex);
      persist_stop = true;
    }
    persist_cv.notify_all();
    persist_thread.join();
  }

  /// Total store insertions so far — the dirty check of the periodic
  /// persist (the startup load's own insertions count as already saved).
  [[nodiscard]] std::size_t total_insertions() const {
    std::size_t n = 0;
    for (const ArtifactStore::StageStats& stage : store.stats().stage) n += stage.insertions;
    return n;
  }

  /// Spills the snapshot exactly like Engine::persist().
  [[nodiscard]] StoreSaveResult save_snapshot() const {
    const Status dir = ensure_store_dir(options.store_dir);
    if (!dir.is_ok()) return StoreSaveResult{dir, 0, 0, 0};
    return store.save(store_snapshot_path(options.store_dir));
  }

  void persist_loop() WHARF_EXCLUDES(persist_mutex) {
    const auto interval = std::chrono::milliseconds(options.persist_interval_ms);
    std::size_t last_saved = total_insertions();
    for (;;) {
      {
        const util::MutexLock guard(persist_mutex);
        if (!persist_stop) (void)persist_cv.wait_for(persist_mutex, interval);
        // A final save on graceful shutdown is the owner's job
        // (spill_store); the periodic thread only covers abrupt death.
        if (persist_stop) return;
      }
      const std::size_t inserted = total_insertions();
      if (inserted == last_saved) continue;  // idle: nothing new to spill
      // Best-effort: a failing save (unwritable dir, disk full) retries
      // on the next dirty tick rather than aborting the thread.
      if (save_snapshot().status.is_ok()) last_saved = inserted;
    }
  }

  /// Folds one served report into the engine-lifetime totals.
  void accumulate(const AnalysisReport& report) WHARF_EXCLUDES(totals_mutex) {
    const util::MutexLock guard(totals_mutex);
    total_hits += report.diagnostics.cache_hits + report.diagnostics.search_hits;
    total_misses += report.diagnostics.cache_misses + report.diagnostics.search_misses;
    total_shared += report.diagnostics.cache_shared + report.diagnostics.search_shared;
  }
};

Engine::Engine(EngineOptions options) : impl_(std::make_unique<Impl>(std::move(options))) {}
Engine::~Engine() = default;
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

const EngineOptions& Engine::options() const { return impl_->options; }

Session Engine::open_session(System system, TwcaOptions options) {
  return Session(std::move(system), options, impl_->store, impl_->options.jobs);
}

AnalysisReport Engine::run(const AnalysisRequest& request) {
  // One-shot adapter: an ephemeral session serves the whole request.
  Session session(request.system, request.options, impl_->store, impl_->options.jobs);
  AnalysisReport report = session.serve(request.queries);
  impl_->accumulate(report);
  return report;
}

std::vector<AnalysisReport> Engine::run_batch(const std::vector<AnalysisRequest>& requests) {
  std::vector<AnalysisReport> reports(requests.size());

  // One epoch for the whole batch: per-request hit/miss classification
  // is relative to the store state at batch start, which makes the
  // diagnostics independent of worker scheduling (artifacts produced by
  // sibling requests are shared but count as misses everywhere).
  const std::uint64_t epoch = impl_->store.begin_epoch();

  struct TaskRef {
    std::size_t request = 0;
    std::size_t query = 0;
  };
  std::vector<TaskRef> tasks;
  std::vector<Session> sessions;
  std::vector<std::vector<QueryResult>> results(requests.size());
  sessions.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    sessions.emplace_back(requests[i].system, requests[i].options, impl_->store,
                          impl_->options.jobs, epoch);
    results[i].resize(requests[i].queries.size());
    for (std::size_t q = 0; q < requests[i].queries.size(); ++q) tasks.push_back({i, q});
  }

  // Every query is independent and writes its own preallocated slot —
  // results are identical for any jobs value.
  util::parallel_for_index(tasks.size(), impl_->options.jobs, [&](std::size_t t) {
    const TaskRef& ref = tasks[t];
    results[ref.request][ref.query] =
        sessions[ref.request].execute(requests[ref.request].queries[ref.query], tasks.size());
  });

  for (std::size_t i = 0; i < requests.size(); ++i) {
    reports[i] = sessions[i].collect(std::move(results[i]));
    impl_->accumulate(reports[i]);
  }
  return reports;
}

Engine::CacheStats Engine::cache_stats() const {
  const ArtifactStore::Stats stats = impl_->store.stats();
  Engine::CacheStats out;
  out.evictions = stats.evictions;
  out.entries = stats.resident_entries;
  out.resident_bytes = stats.resident_bytes;
  const util::MutexLock guard(impl_->totals_mutex);
  out.hits = impl_->total_hits;
  out.misses = impl_->total_misses;
  out.shared = impl_->total_shared;
  return out;
}

ArtifactStore::Stats Engine::store_stats() const { return impl_->store.stats(); }

void Engine::clear_cache() { impl_->store.clear(); }

const Engine::PersistenceStats& Engine::persistence_stats() const { return impl_->persistence; }

StoreSaveResult Engine::persist() const {
  if (impl_->options.store_dir.empty()) return StoreSaveResult{};
  return impl_->save_snapshot();
}

// ---------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------

namespace {

void write_status(io::JsonWriter& w, const Status& status) {
  w.key("status");
  w.value(to_string(status.code()));
  if (!status.message().empty()) {
    w.key("reason");
    w.value(status.message());
  }
}

void write_objective(io::JsonWriter& w, const search::Objective& o) {
  w.begin_object();
  w.key("chains_missing");
  w.value(o.chains_missing);
  w.key("total_dmm");
  w.value(o.total_dmm);
  w.key("total_wcl");
  w.value(o.total_wcl);
  w.end_object();
}

void write_string_array(io::JsonWriter& w, const std::vector<std::string>& values) {
  w.begin_array();
  for (const std::string& v : values) w.value(v);
  w.end_array();
}

void write_path_dmm(io::JsonWriter& w, const PathDmmResult& r) {
  w.begin_object();
  w.key("k");
  w.value(r.k);
  w.key("dmm");
  w.value(r.dmm);
  w.key("status");
  w.value(to_string(r.status));
  if (!r.reason.empty()) {
    w.key("reason");
    w.value(r.reason);
  }
  w.key("budgets");
  w.begin_array();
  for (const Time b : r.budgets) w.value(b);
  w.end_array();
  w.key("per_chain");
  w.begin_array();
  for (const Count c : r.per_chain) w.value(c);
  w.end_array();
  w.end_object();
}

void write_answer(io::JsonWriter& w, const QueryResult& result) {
  std::visit(
      [&](const auto& a) {
        using A = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<A, std::monostate>) {
          w.key("query");
          w.value("failed");
        } else if constexpr (std::is_same_v<A, LatencyAnswer>) {
          w.key("query");
          w.value("latency");
          w.key("chain");
          w.value(a.chain);
          w.key("without_overload");
          w.value(a.without_overload);
          w.key("latency");
          w.raw(io::to_json(a.result));
        } else if constexpr (std::is_same_v<A, DmmAnswer>) {
          w.key("query");
          w.value("dmm");
          w.key("chain");
          w.value(a.chain);
          w.key("dmm");
          w.begin_array();
          for (const DmmResult& r : a.curve) w.raw(io::to_json(r));
          w.end_array();
        } else if constexpr (std::is_same_v<A, WeaklyHardAnswer>) {
          w.key("query");
          w.value("weakly_hard");
          w.key("chain");
          w.value(a.chain);
          w.key("m");
          w.value(a.m);
          w.key("k");
          w.value(a.k);
          w.key("dmm");
          w.value(a.dmm);
          w.key("dmm_status");
          w.value(to_string(a.dmm_status));
          w.key("satisfied");
          w.value(a.satisfied);
        } else if constexpr (std::is_same_v<A, SimulationAnswer>) {
          w.key("query");
          w.value("simulation");
          w.key("makespan");
          w.value(a.makespan);
          w.key("chains");
          w.begin_array();
          for (const SimulationAnswer::ChainStats& c : a.chains) {
            w.begin_object();
            w.key("chain");
            w.value(c.chain);
            w.key("completed");
            w.value(c.completed);
            w.key("max_latency");
            w.value(c.max_latency);
            w.key("misses");
            w.value(c.miss_count);
            w.key("max_window_misses");
            w.value(c.max_window_misses);
            w.end_object();
          }
          w.end_array();
          w.key("validated");
          w.value(a.validated);
          w.key("violations");
          w.begin_array();
          for (const std::string& v : a.violations) w.value(v);
          w.end_array();
        } else if constexpr (std::is_same_v<A, SearchAnswer>) {
          w.key("query");
          w.value("priority_search");
          w.key("nominal");
          write_objective(w, a.nominal);
          w.key("best");
          write_objective(w, a.result.best_objective);
          w.key("evaluations");
          w.value(a.result.evaluations);
          w.key("priorities");
          w.begin_array();
          for (const Priority p : a.result.best_priorities) w.value(p);
          w.end_array();
          w.key("store");
          w.begin_object();
          w.key("lookups");
          w.value(static_cast<long long>(a.stats.lookups()));
          w.key("hits");
          w.value(static_cast<long long>(a.stats.hits()));
          w.key("misses");
          w.value(static_cast<long long>(a.stats.misses()));
          w.key("shared");
          w.value(static_cast<long long>(a.stats.shared()));
          w.end_object();
        } else if constexpr (std::is_same_v<A, PathLatencyAnswer>) {
          w.key("query");
          w.value("path_latency");
          w.key("chains");
          write_string_array(w, a.chains);
          w.key("bounded");
          w.value(a.result.bounded);
          if (!a.result.reason.empty()) {
            w.key("reason");
            w.value(a.result.reason);
          }
          w.key("wcl");
          w.value(a.result.wcl);
          w.key("per_chain_wcl");
          w.begin_array();
          for (const Time t : a.result.per_chain_wcl) w.value(t);
          w.end_array();
        } else if constexpr (std::is_same_v<A, PathDmmAnswer>) {
          w.key("query");
          w.value("path_dmm");
          w.key("chains");
          write_string_array(w, a.chains);
          w.key("dmm");
          w.begin_array();
          for (const PathDmmResult& r : a.curve) write_path_dmm(w, r);
          w.end_array();
        }
      },
      result.answer);
}

void write_result(io::JsonWriter& w, const QueryResult& result) {
  w.begin_object();
  if (result.ok()) {
    write_answer(w, result);
  }
  write_status(w, result.status);
  w.end_object();
}

void write_report_diagnostics(io::JsonWriter& w, const ReportDiagnostics& diagnostics) {
  w.begin_object();
  w.key("system_hash");
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(diagnostics.system_hash));
    w.value(std::string(buf));
  }
  w.key("cache_hit");
  w.value(diagnostics.cache_hit);
  w.key("cache_hits");
  w.value(static_cast<long long>(diagnostics.cache_hits));
  w.key("cache_misses");
  w.value(static_cast<long long>(diagnostics.cache_misses));
  w.key("cache_shared");
  w.value(static_cast<long long>(diagnostics.cache_shared));
  w.key("stages");
  w.begin_object();
  for (std::size_t s = 0; s < kArtifactStageCount; ++s) {
    const StageDiagnostics& stage = diagnostics.stages[s];
    w.key(to_string(static_cast<ArtifactStage>(static_cast<int>(s))));
    w.begin_object();
    w.key("lookups");
    w.value(static_cast<long long>(stage.lookups));
    w.key("hits");
    w.value(static_cast<long long>(stage.hits));
    w.key("misses");
    w.value(static_cast<long long>(stage.misses));
    w.key("shared");
    w.value(static_cast<long long>(stage.shared));
    w.key("bytes_inserted");
    w.value(static_cast<long long>(stage.bytes_inserted));
    w.end_object();
  }
  w.end_object();
  if (diagnostics.search_evaluations > 0) {
    w.key("search");
    w.begin_object();
    w.key("evaluations");
    w.value(diagnostics.search_evaluations);
    w.key("hits");
    w.value(static_cast<long long>(diagnostics.search_hits));
    w.key("misses");
    w.value(static_cast<long long>(diagnostics.search_misses));
    w.key("shared");
    w.value(static_cast<long long>(diagnostics.search_shared));
    w.end_object();
  }
  w.key("queries_failed");
  w.value(static_cast<long long>(diagnostics.queries_failed));
  w.end_object();
}

}  // namespace

std::string to_json(const QueryResult& result) {
  std::ostringstream os;
  io::JsonWriter w(os);
  write_result(w, result);
  return os.str();
}

std::string to_json(const ReportDiagnostics& diagnostics) {
  std::ostringstream os;
  io::JsonWriter w(os);
  write_report_diagnostics(w, diagnostics);
  return os.str();
}

std::string to_json(const AnalysisReport& report) {
  std::ostringstream os;
  io::JsonWriter w(os);
  w.begin_object();
  w.key("system");
  w.value(report.system);
  write_status(w, report.worst_status());
  w.key("results");
  w.begin_array();
  for (const QueryResult& result : report.results) {
    write_result(w, result);
  }
  w.end_array();
  w.key("diagnostics");
  write_report_diagnostics(w, report.diagnostics);
  w.end_object();
  return os.str();
}

}  // namespace wharf
