#include "engine/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <utility>

#include "io/json.hpp"
#include "io/system_format.hpp"
#include "sim/arrival_sequence.hpp"
#include "sim/busy_windows.hpp"
#include "sim/simulator.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"
#include "util/worker_pool.hpp"

namespace wharf {

namespace {

/// Whole-request fingerprint (diagnostics only — stage artifacts key on
/// the finer model slices of core/model_slice.hpp): the serialized
/// system plus every analysis knob.
std::string request_fingerprint(const System& system, const TwcaOptions& o) {
  std::ostringstream os;
  os << io::serialize_system(system) << '\n'
     << "criterion=" << static_cast<int>(o.criterion) << " max_combinations="
     << o.max_combinations << " minimal_only=" << o.minimal_only << " cap_at_k=" << o.cap_at_k
     << " use_dfs_packer=" << o.use_dfs_packer
     << " max_busy_windows=" << o.analysis.max_busy_windows
     << " max_fixed_point_iterations=" << o.analysis.max_fixed_point_iterations
     << " divergence_guard=" << o.analysis.divergence_guard
     << " naive_arbitrary=" << o.analysis.naive_arbitrary;
  return os.str();
}

/// True when the DMM-carrying payload of a successful answer reports
/// kNoGuarantee anywhere.
bool answer_has_no_guarantee(const QueryResult& r) {
  if (const auto* dmm = std::get_if<DmmAnswer>(&r.answer)) {
    return std::any_of(dmm->curve.begin(), dmm->curve.end(), [](const DmmResult& d) {
      return d.status == DmmStatus::kNoGuarantee;
    });
  }
  if (const auto* wh = std::get_if<WeaklyHardAnswer>(&r.answer)) {
    return wh->dmm_status == DmmStatus::kNoGuarantee;
  }
  if (const auto* lat = std::get_if<LatencyAnswer>(&r.answer)) {
    return !lat->result.bounded;
  }
  if (const auto* path = std::get_if<PathLatencyAnswer>(&r.answer)) {
    return !path->result.bounded;
  }
  if (const auto* pd = std::get_if<PathDmmAnswer>(&r.answer)) {
    return std::any_of(pd->curve.begin(), pd->curve.end(), [](const PathDmmResult& d) {
      return d.status == DmmStatus::kNoGuarantee;
    });
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------
// AnalysisRequest / AnalysisReport
// ---------------------------------------------------------------------

AnalysisRequest AnalysisRequest::standard(System system, std::vector<Count> ks,
                                          TwcaOptions options) {
  if (ks.empty()) ks.push_back(10);
  AnalysisRequest request{std::move(system), options, {}};
  for (const int c : request.system.regular_indices()) {
    const std::string& name = request.system.chain(c).name();
    request.queries.push_back(LatencyQuery{name, /*without_overload=*/false});
    request.queries.push_back(LatencyQuery{name, /*without_overload=*/true});
    if (request.system.chain(c).deadline().has_value()) {
      request.queries.push_back(DmmQuery{name, ks});
    }
  }
  return request;
}

bool AnalysisReport::ok() const {
  return std::all_of(results.begin(), results.end(),
                     [](const QueryResult& r) { return r.ok(); });
}

Status AnalysisReport::worst_status() const {
  for (const QueryResult& r : results) {
    if (!r.ok()) return r.status;
  }
  for (const QueryResult& r : results) {
    if (answer_has_no_guarantee(r)) {
      return Status::no_guarantee(
          "analysis completed but cannot bound all misses (see per-query results)");
    }
  }
  return Status::ok();
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

struct Engine::Impl {
  EngineOptions options;
  ArtifactStore store;

  /// Engine-lifetime lookup totals, accumulated from per-request
  /// diagnostics after every served request.
  std::mutex totals_mutex;
  std::size_t total_hits = 0;
  std::size_t total_misses = 0;
  std::size_t total_shared = 0;

  explicit Impl(EngineOptions opts) : options(opts), store(opts.cache_bytes) {}

  /// `concurrent_tasks` is how many query tasks the current
  /// run()/run_batch() call spreads over the worker pool — nested
  /// parallelism (search neighborhoods) stays sequential unless this
  /// query has the pool to itself.
  QueryResult execute(const AnalysisRequest& request, Pipeline& pipeline, const Query& query,
                      std::size_t concurrent_tasks);

  /// Fills the report's diagnostics from the pipeline's telemetry (plus
  /// the search evaluators' from the answers) and folds them into the
  /// engine-lifetime totals.
  void finalize(AnalysisReport& report, const Pipeline& pipeline) {
    report.diagnostics.stages = pipeline.stage_diagnostics();
    std::size_t lookups = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t shared = 0;
    for (const StageDiagnostics& stage : report.diagnostics.stages) {
      lookups += stage.lookups;
      hits += stage.hits;
      misses += stage.misses;
      shared += stage.shared;
    }
    report.diagnostics.cache_hits = hits;
    report.diagnostics.cache_misses = misses;
    report.diagnostics.cache_shared = shared;
    report.diagnostics.cache_hit = lookups > 0 && misses == 0 && shared == 0;
    report.diagnostics.queries_failed = static_cast<std::size_t>(
        std::count_if(report.results.begin(), report.results.end(),
                      [](const QueryResult& r) { return !r.ok(); }));
    for (const QueryResult& r : report.results) {
      if (const auto* search = std::get_if<SearchAnswer>(&r.answer)) {
        report.diagnostics.search_evaluations += search->stats.evaluations;
        report.diagnostics.search_hits += search->stats.hits();
        report.diagnostics.search_misses += search->stats.misses();
        report.diagnostics.search_shared += search->stats.shared();
      }
    }
    {
      const std::lock_guard<std::mutex> guard(totals_mutex);
      total_hits += hits + report.diagnostics.search_hits;
      total_misses += misses + report.diagnostics.search_misses;
      total_shared += shared + report.diagnostics.search_shared;
    }
  }
};

namespace {

/// Resolves a chain name to its index or a not-found Status.
Expected<int> resolve_chain(const System& system, const std::string& name) {
  const auto index = system.chain_index(name);
  if (!index.has_value()) {
    return Status::not_found(util::cat("unknown chain '", name, "' in system '", system.name(),
                                       "'"));
  }
  return *index;
}

QueryResult run_latency(Pipeline& pipeline, const LatencyQuery& query) {
  QueryResult out;
  const Expected<int> chain = resolve_chain(pipeline.system(), query.chain);
  if (!chain) {
    out.status = chain.status();
    return out;
  }
  const auto answer = capture([&] {
    LatencyAnswer a{query.chain, query.without_overload, {}};
    a.result = query.without_overload ? *pipeline.latency_without_overload(chain.value())
                                      : *pipeline.latency(chain.value());
    return a;
  });
  if (answer) {
    out.answer = answer.value();
  } else {
    out.status = answer.status();
  }
  return out;
}

QueryResult run_dmm(Pipeline& pipeline, const DmmQuery& query) {
  QueryResult out;
  const Expected<int> chain = resolve_chain(pipeline.system(), query.chain);
  if (!chain) {
    out.status = chain.status();
    return out;
  }
  const std::vector<Count> ks = query.ks.empty() ? std::vector<Count>{10} : query.ks;
  const auto answer =
      capture([&] { return DmmAnswer{query.chain, pipeline.dmm_curve(chain.value(), ks)}; });
  if (answer) {
    out.answer = answer.value();
  } else {
    out.status = answer.status();
  }
  return out;
}

QueryResult run_weakly_hard(Pipeline& pipeline, const WeaklyHardQuery& query) {
  QueryResult out;
  const Expected<int> chain = resolve_chain(pipeline.system(), query.chain);
  if (!chain) {
    out.status = chain.status();
    return out;
  }
  const auto answer = capture([&] {
    WHARF_EXPECT(query.m >= 0, "weakly-hard m must be >= 0, got " << query.m);
    const DmmResult r = pipeline.dmm(chain.value(), query.k);
    return WeaklyHardAnswer{query.chain, query.m,    query.k,
                            r.dmm,       r.status,   r.dmm <= query.m};
  });
  if (answer) {
    out.answer = answer.value();
  } else {
    out.status = answer.status();
  }
  return out;
}

/// Resolves a path's chain names into a PathSpec, or a not-found Status.
Expected<PathSpec> resolve_path(const System& system, const std::vector<std::string>& names) {
  PathSpec spec;
  for (const std::string& name : names) {
    const Expected<int> chain = resolve_chain(system, name);
    if (!chain) return chain.status();
    spec.chains.push_back(chain.value());
  }
  return spec;
}

QueryResult run_path_latency(Pipeline& pipeline, const PathLatencyQuery& query) {
  QueryResult out;
  const Expected<PathSpec> spec = resolve_path(pipeline.system(), query.chains);
  if (!spec) {
    out.status = spec.status();
    return out;
  }
  const auto answer =
      capture([&] { return PathLatencyAnswer{query.chains, pipeline.path_latency(spec.value())}; });
  if (answer) {
    out.answer = answer.value();
  } else {
    out.status = answer.status();
  }
  return out;
}

QueryResult run_path_dmm(Pipeline& pipeline, const PathDmmQuery& query) {
  QueryResult out;
  const Expected<PathSpec> resolved = resolve_path(pipeline.system(), query.chains);
  if (!resolved) {
    out.status = resolved.status();
    return out;
  }
  const auto answer = capture([&] {
    WHARF_EXPECT(query.deadline >= 1,
                 "path DMM requires a deadline >= 1, got " << query.deadline);
    PathSpec spec = resolved.value();
    spec.deadline = query.deadline;
    spec.budgets = query.budgets;
    const std::vector<Count> ks = query.ks.empty() ? std::vector<Count>{10} : query.ks;
    PathDmmAnswer a{query.chains, {}};
    a.curve.reserve(ks.size());
    for (const Count k : ks) a.curve.push_back(pipeline.path_dmm(spec, k));
    return a;
  });
  if (answer) {
    out.answer = answer.value();
  } else {
    out.status = answer.status();
  }
  return out;
}

QueryResult run_simulation(Pipeline& pipeline, const SimulationQuery& query) {
  QueryResult out;
  const auto answer = capture([&] {
    WHARF_EXPECT(query.horizon >= 1, "simulation horizon must be >= 1, got " << query.horizon);
    WHARF_EXPECT(query.check_k >= 1, "simulation check_k must be >= 1, got " << query.check_k);
    const System& system = pipeline.system();

    std::vector<std::vector<Time>> arrivals;
    arrivals.reserve(static_cast<std::size_t>(system.size()));
    for (int c = 0; c < system.size(); ++c) {
      const ArrivalModel& model = system.chain(c).arrival();
      if (query.extra_gap < 0) {
        arrivals.push_back(sim::greedy_arrivals(model, 0, query.horizon));
      } else {
        arrivals.push_back(sim::random_arrivals(model, 0, query.horizon, query.extra_gap,
                                                query.seed + static_cast<std::uint64_t>(c)));
      }
    }
    sim::SimOptions sim_options;
    sim_options.record_trace = query.record_trace;
    sim::SimResult run = sim::simulate(system, arrivals, sim_options);

    SimulationAnswer a;
    a.makespan = run.makespan;
    a.trace = std::move(run.trace);
    for (int c = 0; c < system.size(); ++c) {
      const sim::ChainResult& cr = run.chains[static_cast<std::size_t>(c)];
      SimulationAnswer::ChainStats stats;
      stats.chain = system.chain(c).name();
      stats.completed = cr.completed;
      stats.max_latency = cr.max_latency;
      stats.miss_count = cr.miss_count;
      stats.max_window_misses = cr.instances.empty() ? 0 : cr.max_misses_in_window(query.check_k);
      a.chains.push_back(std::move(stats));
    }

    if (query.cross_validate) {
      for (const int c : system.regular_indices()) {
        const auto& stats = a.chains[static_cast<std::size_t>(c)];
        const LatencyResult& bound = *pipeline.latency(c);
        if (bound.bounded && stats.max_latency > bound.wcl) {
          a.violations.push_back(util::cat("chain '", stats.chain, "': simulated latency ",
                                           stats.max_latency, " exceeds WCL bound ", bound.wcl));
        }
        if (!system.chain(c).deadline().has_value()) continue;
        // The dmm bound is claimed only under the paper's standing
        // assumption: at most one activation per overload chain within
        // any busy window.  Check it exactly on the observed run (as
        // the property suite does) and skip the dmm comparison for
        // runs outside that regime.
        const auto windows = sim::observed_busy_windows(run.chains[static_cast<std::size_t>(c)]);
        bool assumption_holds = true;
        for (const int o : system.overload_indices()) {
          assumption_holds =
              assumption_holds &&
              sim::at_most_one_arrival_per_window(windows,
                                                  arrivals[static_cast<std::size_t>(o)]);
        }
        if (!assumption_holds) continue;
        const DmmResult dmm = pipeline.dmm(c, query.check_k);
        if (dmm.status != DmmStatus::kNoGuarantee && stats.max_window_misses > dmm.dmm) {
          a.violations.push_back(util::cat("chain '", stats.chain, "': ",
                                           stats.max_window_misses, " misses in a window of ",
                                           query.check_k, " exceed dmm bound ", dmm.dmm));
        }
      }
      a.validated = a.violations.empty();
    }
    return a;
  });
  if (answer) {
    out.answer = answer.value();
  } else {
    out.status = answer.status();
  }
  return out;
}

/// Scores candidates against the engine's shared store: the search
/// warms, and profits from, the same artifacts as every other query,
/// and hill-climb neighborhoods evaluate on the worker pool.
QueryResult run_search(ArtifactStore& store, int jobs, std::size_t concurrent_tasks,
                       const AnalysisRequest& request, const PrioritySearchQuery& query) {
  QueryResult out;
  const auto answer = capture([&] {
    const search::EvaluationSpec spec{query.k, {}};
    // The engine already spreads the serving call's query tasks over
    // the worker pool; give the evaluator the pool width only when this
    // search has the pool to itself, so neither a multi-query request
    // nor a batch of single-query requests can fan out jobs^2 threads
    // (parallel_for_index spawns per call).
    const int evaluator_jobs = concurrent_tasks > 1 ? 1 : jobs;
    search::PipelineEvaluator evaluator(request.system, spec, request.options, store,
                                        evaluator_jobs);
    SearchAnswer a;
    a.nominal = evaluator.evaluate(request.system.flat_priorities());
    switch (query.strategy) {
      case PrioritySearchQuery::Strategy::kRandom:
        WHARF_EXPECT(query.budget >= 1, "search budget must be >= 1, got " << query.budget);
        a.result = search::random_search(evaluator, query.budget, query.seed);
        break;
      case PrioritySearchQuery::Strategy::kExhaustive:
        a.result = search::exhaustive_search(evaluator, query.max_permutations);
        break;
      case PrioritySearchQuery::Strategy::kHillClimb: {
        WHARF_EXPECT(query.budget >= 1, "search budget must be >= 1, got " << query.budget);
        WHARF_EXPECT(query.restarts >= 1, "climb restarts must be >= 1, got " << query.restarts);
        search::HillClimbOptions climb;
        climb.restarts = query.restarts;
        climb.max_steps = query.budget;
        climb.seed = query.seed;
        a.result = search::hill_climb(evaluator, climb);
        break;
      }
    }
    a.stats = evaluator.stats();
    return a;
  });
  if (answer) {
    out.answer = answer.value();
  } else {
    out.status = answer.status();
  }
  return out;
}

}  // namespace

QueryResult Engine::Impl::execute(const AnalysisRequest& request, Pipeline& pipeline,
                                  const Query& query, std::size_t concurrent_tasks) {
  return std::visit(
      [&](const auto& q) -> QueryResult {
        using Q = std::decay_t<decltype(q)>;
        if constexpr (std::is_same_v<Q, LatencyQuery>) {
          return run_latency(pipeline, q);
        } else if constexpr (std::is_same_v<Q, DmmQuery>) {
          return run_dmm(pipeline, q);
        } else if constexpr (std::is_same_v<Q, WeaklyHardQuery>) {
          return run_weakly_hard(pipeline, q);
        } else if constexpr (std::is_same_v<Q, SimulationQuery>) {
          return run_simulation(pipeline, q);
        } else if constexpr (std::is_same_v<Q, PathLatencyQuery>) {
          return run_path_latency(pipeline, q);
        } else if constexpr (std::is_same_v<Q, PathDmmQuery>) {
          return run_path_dmm(pipeline, q);
        } else {
          return run_search(store, options.jobs, concurrent_tasks, request, q);
        }
      },
      query);
}

Engine::Engine(EngineOptions options) : impl_(std::make_unique<Impl>(options)) {}
Engine::~Engine() = default;
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

const EngineOptions& Engine::options() const { return impl_->options; }

AnalysisReport Engine::run(const AnalysisRequest& request) {
  AnalysisReport report;
  report.system = request.system.name();
  report.results.resize(request.queries.size());
  report.diagnostics.system_hash =
      util::fnv1a64(request_fingerprint(request.system, request.options));

  const std::uint64_t epoch = impl_->store.begin_epoch();
  Pipeline pipeline(request.system, request.options, impl_->store, epoch,
                    impl_->options.jobs);
  util::parallel_for_index(request.queries.size(), impl_->options.jobs, [&](std::size_t q) {
    report.results[q] =
        impl_->execute(request, pipeline, request.queries[q], request.queries.size());
  });
  impl_->finalize(report, pipeline);
  return report;
}

std::vector<AnalysisReport> Engine::run_batch(const std::vector<AnalysisRequest>& requests) {
  std::vector<AnalysisReport> reports(requests.size());

  // One epoch for the whole batch: per-request hit/miss classification
  // is relative to the store state at batch start, which makes the
  // diagnostics independent of worker scheduling (artifacts produced by
  // sibling requests are shared but count as misses everywhere).
  const std::uint64_t epoch = impl_->store.begin_epoch();

  struct TaskRef {
    std::size_t request = 0;
    std::size_t query = 0;
  };
  std::vector<TaskRef> tasks;
  std::vector<Pipeline> pipelines;
  pipelines.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    reports[i].system = requests[i].system.name();
    reports[i].results.resize(requests[i].queries.size());
    reports[i].diagnostics.system_hash =
        util::fnv1a64(request_fingerprint(requests[i].system, requests[i].options));
    pipelines.emplace_back(requests[i].system, requests[i].options, impl_->store, epoch,
                           impl_->options.jobs);
    for (std::size_t q = 0; q < requests[i].queries.size(); ++q) tasks.push_back({i, q});
  }

  // Every query is independent and writes its own preallocated slot —
  // results are identical for any jobs value.
  util::parallel_for_index(tasks.size(), impl_->options.jobs, [&](std::size_t t) {
    const TaskRef& ref = tasks[t];
    reports[ref.request].results[ref.query] =
        impl_->execute(requests[ref.request], pipelines[ref.request],
                       requests[ref.request].queries[ref.query], tasks.size());
  });

  for (std::size_t i = 0; i < requests.size(); ++i) {
    impl_->finalize(reports[i], pipelines[i]);
  }
  return reports;
}

Engine::CacheStats Engine::cache_stats() const {
  const ArtifactStore::Stats stats = impl_->store.stats();
  Engine::CacheStats out;
  out.evictions = stats.evictions;
  out.entries = stats.resident_entries;
  out.resident_bytes = stats.resident_bytes;
  const std::lock_guard<std::mutex> guard(impl_->totals_mutex);
  out.hits = impl_->total_hits;
  out.misses = impl_->total_misses;
  out.shared = impl_->total_shared;
  return out;
}

ArtifactStore::Stats Engine::store_stats() const { return impl_->store.stats(); }

void Engine::clear_cache() { impl_->store.clear(); }

// ---------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------

namespace {

void write_status(io::JsonWriter& w, const Status& status) {
  w.key("status");
  w.value(to_string(status.code()));
  if (!status.message().empty()) {
    w.key("reason");
    w.value(status.message());
  }
}

void write_objective(io::JsonWriter& w, const search::Objective& o) {
  w.begin_object();
  w.key("chains_missing");
  w.value(o.chains_missing);
  w.key("total_dmm");
  w.value(o.total_dmm);
  w.key("total_wcl");
  w.value(o.total_wcl);
  w.end_object();
}

void write_string_array(io::JsonWriter& w, const std::vector<std::string>& values) {
  w.begin_array();
  for (const std::string& v : values) w.value(v);
  w.end_array();
}

void write_path_dmm(io::JsonWriter& w, const PathDmmResult& r) {
  w.begin_object();
  w.key("k");
  w.value(r.k);
  w.key("dmm");
  w.value(r.dmm);
  w.key("status");
  w.value(to_string(r.status));
  if (!r.reason.empty()) {
    w.key("reason");
    w.value(r.reason);
  }
  w.key("budgets");
  w.begin_array();
  for (const Time b : r.budgets) w.value(b);
  w.end_array();
  w.key("per_chain");
  w.begin_array();
  for (const Count c : r.per_chain) w.value(c);
  w.end_array();
  w.end_object();
}

void write_answer(io::JsonWriter& w, const QueryResult& result) {
  std::visit(
      [&](const auto& a) {
        using A = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<A, std::monostate>) {
          w.key("query");
          w.value("failed");
        } else if constexpr (std::is_same_v<A, LatencyAnswer>) {
          w.key("query");
          w.value("latency");
          w.key("chain");
          w.value(a.chain);
          w.key("without_overload");
          w.value(a.without_overload);
          w.key("latency");
          w.raw(io::to_json(a.result));
        } else if constexpr (std::is_same_v<A, DmmAnswer>) {
          w.key("query");
          w.value("dmm");
          w.key("chain");
          w.value(a.chain);
          w.key("dmm");
          w.begin_array();
          for (const DmmResult& r : a.curve) w.raw(io::to_json(r));
          w.end_array();
        } else if constexpr (std::is_same_v<A, WeaklyHardAnswer>) {
          w.key("query");
          w.value("weakly_hard");
          w.key("chain");
          w.value(a.chain);
          w.key("m");
          w.value(a.m);
          w.key("k");
          w.value(a.k);
          w.key("dmm");
          w.value(a.dmm);
          w.key("dmm_status");
          w.value(to_string(a.dmm_status));
          w.key("satisfied");
          w.value(a.satisfied);
        } else if constexpr (std::is_same_v<A, SimulationAnswer>) {
          w.key("query");
          w.value("simulation");
          w.key("makespan");
          w.value(a.makespan);
          w.key("chains");
          w.begin_array();
          for (const SimulationAnswer::ChainStats& c : a.chains) {
            w.begin_object();
            w.key("chain");
            w.value(c.chain);
            w.key("completed");
            w.value(c.completed);
            w.key("max_latency");
            w.value(c.max_latency);
            w.key("misses");
            w.value(c.miss_count);
            w.key("max_window_misses");
            w.value(c.max_window_misses);
            w.end_object();
          }
          w.end_array();
          w.key("validated");
          w.value(a.validated);
          w.key("violations");
          w.begin_array();
          for (const std::string& v : a.violations) w.value(v);
          w.end_array();
        } else if constexpr (std::is_same_v<A, SearchAnswer>) {
          w.key("query");
          w.value("priority_search");
          w.key("nominal");
          write_objective(w, a.nominal);
          w.key("best");
          write_objective(w, a.result.best_objective);
          w.key("evaluations");
          w.value(a.result.evaluations);
          w.key("priorities");
          w.begin_array();
          for (const Priority p : a.result.best_priorities) w.value(p);
          w.end_array();
          w.key("store");
          w.begin_object();
          w.key("lookups");
          w.value(static_cast<long long>(a.stats.lookups()));
          w.key("hits");
          w.value(static_cast<long long>(a.stats.hits()));
          w.key("misses");
          w.value(static_cast<long long>(a.stats.misses()));
          w.key("shared");
          w.value(static_cast<long long>(a.stats.shared()));
          w.end_object();
        } else if constexpr (std::is_same_v<A, PathLatencyAnswer>) {
          w.key("query");
          w.value("path_latency");
          w.key("chains");
          write_string_array(w, a.chains);
          w.key("bounded");
          w.value(a.result.bounded);
          if (!a.result.reason.empty()) {
            w.key("reason");
            w.value(a.result.reason);
          }
          w.key("wcl");
          w.value(a.result.wcl);
          w.key("per_chain_wcl");
          w.begin_array();
          for (const Time t : a.result.per_chain_wcl) w.value(t);
          w.end_array();
        } else if constexpr (std::is_same_v<A, PathDmmAnswer>) {
          w.key("query");
          w.value("path_dmm");
          w.key("chains");
          write_string_array(w, a.chains);
          w.key("dmm");
          w.begin_array();
          for (const PathDmmResult& r : a.curve) write_path_dmm(w, r);
          w.end_array();
        }
      },
      result.answer);
}

}  // namespace

std::string to_json(const AnalysisReport& report) {
  std::ostringstream os;
  io::JsonWriter w(os);
  w.begin_object();
  w.key("system");
  w.value(report.system);
  write_status(w, report.worst_status());
  w.key("results");
  w.begin_array();
  for (const QueryResult& result : report.results) {
    w.begin_object();
    if (result.ok()) {
      write_answer(w, result);
    }
    write_status(w, result.status);
    w.end_object();
  }
  w.end_array();
  w.key("diagnostics");
  w.begin_object();
  w.key("system_hash");
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(report.diagnostics.system_hash));
    w.value(std::string(buf));
  }
  w.key("cache_hit");
  w.value(report.diagnostics.cache_hit);
  w.key("cache_hits");
  w.value(static_cast<long long>(report.diagnostics.cache_hits));
  w.key("cache_misses");
  w.value(static_cast<long long>(report.diagnostics.cache_misses));
  w.key("cache_shared");
  w.value(static_cast<long long>(report.diagnostics.cache_shared));
  w.key("stages");
  w.begin_object();
  for (std::size_t s = 0; s < kArtifactStageCount; ++s) {
    const StageDiagnostics& stage = report.diagnostics.stages[s];
    w.key(to_string(static_cast<ArtifactStage>(static_cast<int>(s))));
    w.begin_object();
    w.key("lookups");
    w.value(static_cast<long long>(stage.lookups));
    w.key("hits");
    w.value(static_cast<long long>(stage.hits));
    w.key("misses");
    w.value(static_cast<long long>(stage.misses));
    w.key("shared");
    w.value(static_cast<long long>(stage.shared));
    w.key("bytes_inserted");
    w.value(static_cast<long long>(stage.bytes_inserted));
    w.end_object();
  }
  w.end_object();
  if (report.diagnostics.search_evaluations > 0) {
    w.key("search");
    w.begin_object();
    w.key("evaluations");
    w.value(report.diagnostics.search_evaluations);
    w.key("hits");
    w.value(static_cast<long long>(report.diagnostics.search_hits));
    w.key("misses");
    w.value(static_cast<long long>(report.diagnostics.search_misses));
    w.key("shared");
    w.value(static_cast<long long>(report.diagnostics.search_shared));
    w.end_object();
  }
  w.key("queries_failed");
  w.value(static_cast<long long>(report.diagnostics.queries_failed));
  w.end_object();
  w.end_object();
  return os.str();
}

}  // namespace wharf
