/// \file artifact_types.hpp
/// The closed set of artifact value types the engine stores, with their
/// persistent type tags and byte-weight accounting.
///
/// The ArtifactStore itself is type-erased (shared_ptr<const void> +
/// weight); everything that must agree on what those voids actually are
/// — the pipeline that computes them, the persistence layer that
/// serializes them (store_persist.hpp), and the weight re-accounting on
/// load — includes this header instead of hard-coding its own list.
/// Adding a stage artifact means adding an enumerator here (a *new*
/// value — tags are part of the on-disk format and must never be
/// reused), a weight_of overload, and a serializer pair in
/// store_persist.cpp.

#ifndef WHARF_ENGINE_ARTIFACT_TYPES_HPP
#define WHARF_ENGINE_ARTIFACT_TYPES_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/twca.hpp"
#include "ilp/packing.hpp"
#include "util/weight.hpp"

namespace wharf {

/// Persistent tag naming the concrete type behind a store entry's
/// type-erased value.  Written per record into store snapshots, so the
/// numeric values are frozen: never renumber or reuse one.  kUntyped (0)
/// marks entries inserted through the legacy untagged API — they are
/// skipped by save() (nothing knows how to serialize them).
enum class ArtifactType : std::uint8_t {
  kUntyped = 0,             ///< no tag recorded; not persistable
  kInterferenceContext = 1, ///< stage 1, InterferenceContext
  kLatencyResult = 2,       ///< stage 2, LatencyResult
  kTargetArtifacts = 3,     ///< stage 3, TargetArtifacts
  kDmmResult = 4,           ///< stage 4, DmmResult
  kPackingSolution = 5,     ///< stage 5, ilp::PackingSolution
  kBusyWindowBatch = 6,     ///< stage 2 batch marker, BusyWindowBatch
};

/// The batched busy-window artifact of Pipeline::prime_busy_windows():
/// a marker whose *computation* resolves every member through the
/// normal per-member path (so members are stored, counted and reused
/// individually) under one coarse single-flight window.  The marker
/// itself only pins the member results it gathered.
struct BusyWindowBatch {
  std::vector<std::shared_ptr<const LatencyResult>> results;  ///< one per member
};

/// Resident bytes of a stage-1 interference context (struct, headers,
/// segments, flattened arrival tables).
[[nodiscard]] std::size_t weight_of(const InterferenceContext& ctx);

/// Resident bytes of a batch marker.  Members are weighed by their own
/// store entries; the marker carries only the pointer array.
[[nodiscard]] std::size_t weight_of(const BusyWindowBatch& batch);

/// Resident bytes of a stage-2 latency result.
[[nodiscard]] std::size_t weight_of(const LatencyResult& r);

/// Resident bytes of the stage-3 k-independent overload artifacts.
[[nodiscard]] std::size_t weight_of(const TargetArtifacts& a);

/// Resident bytes of a stage-4 dmm(k) result.
[[nodiscard]] std::size_t weight_of(const DmmResult& r);

/// Resident bytes of a stage-5 packing solution.
[[nodiscard]] std::size_t weight_of(const ilp::PackingSolution& s);

}  // namespace wharf

#endif  // WHARF_ENGINE_ARTIFACT_TYPES_HPP
