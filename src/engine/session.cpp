#include "engine/session.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <utility>

#include "core/arrival.hpp"
#include "io/system_format.hpp"
#include "search/priority_search.hpp"
#include "sim/arrival_sequence.hpp"
#include "sim/busy_windows.hpp"
#include "sim/simulator.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"
#include "util/worker_pool.hpp"

namespace wharf {

namespace {

using Stages = std::array<StageDiagnostics, kArtifactStageCount>;

Stages add(const Stages& a, const Stages& b) {
  Stages out;
  for (std::size_t s = 0; s < kArtifactStageCount; ++s) {
    out[s].lookups = a[s].lookups + b[s].lookups;
    out[s].hits = a[s].hits + b[s].hits;
    out[s].misses = a[s].misses + b[s].misses;
    out[s].shared = a[s].shared + b[s].shared;
    out[s].bytes_inserted = a[s].bytes_inserted + b[s].bytes_inserted;
  }
  return out;
}

Stages sub(const Stages& a, const Stages& b) {
  Stages out;
  for (std::size_t s = 0; s < kArtifactStageCount; ++s) {
    out[s].lookups = a[s].lookups - b[s].lookups;
    out[s].hits = a[s].hits - b[s].hits;
    out[s].misses = a[s].misses - b[s].misses;
    out[s].shared = a[s].shared - b[s].shared;
    out[s].bytes_inserted = a[s].bytes_inserted - b[s].bytes_inserted;
  }
  return out;
}

/// Whole-model fingerprint (diagnostics only — stage artifacts key on
/// the finer model slices of core/model_slice.hpp): the serialized
/// system plus every analysis knob.
std::string model_fingerprint(const System& system, const TwcaOptions& o) {
  std::ostringstream os;
  os << io::serialize_system(system) << '\n'
     << "criterion=" << static_cast<int>(o.criterion) << " max_combinations="
     << o.max_combinations << " minimal_only=" << o.minimal_only << " cap_at_k=" << o.cap_at_k
     << " use_dfs_packer=" << o.use_dfs_packer
     << " max_busy_windows=" << o.analysis.max_busy_windows
     << " max_fixed_point_iterations=" << o.analysis.max_fixed_point_iterations
     << " divergence_guard=" << o.analysis.divergence_guard
     << " naive_arbitrary=" << o.analysis.naive_arbitrary;
  return os.str();
}

// ---------------------------------------------------------------------
// Query runners (shared by Session::execute and, through it, the Engine)
// ---------------------------------------------------------------------

/// Resolves a chain name to its index or a not-found Status.
Expected<int> resolve_chain(const System& system, const std::string& name) {
  const auto index = system.chain_index(name);
  if (!index.has_value()) {
    return Status::not_found(util::cat("unknown chain '", name, "' in system '", system.name(),
                                       "'"));
  }
  return *index;
}

QueryResult run_latency(Pipeline& pipeline, const LatencyQuery& query) {
  QueryResult out;
  const Expected<int> chain = resolve_chain(pipeline.system(), query.chain);
  if (!chain) {
    out.status = chain.status();
    return out;
  }
  const auto answer = capture([&] {
    LatencyAnswer a{query.chain, query.without_overload, {}};
    a.result = query.without_overload ? *pipeline.latency_without_overload(chain.value())
                                      : *pipeline.latency(chain.value());
    return a;
  });
  if (answer) {
    out.answer = answer.value();
  } else {
    out.status = answer.status();
  }
  return out;
}

QueryResult run_dmm(Pipeline& pipeline, const DmmQuery& query) {
  QueryResult out;
  const Expected<int> chain = resolve_chain(pipeline.system(), query.chain);
  if (!chain) {
    out.status = chain.status();
    return out;
  }
  const std::vector<Count> ks = query.ks.empty() ? std::vector<Count>{10} : query.ks;
  const auto answer =
      capture([&] { return DmmAnswer{query.chain, pipeline.dmm_curve(chain.value(), ks)}; });
  if (answer) {
    out.answer = answer.value();
  } else {
    out.status = answer.status();
  }
  return out;
}

QueryResult run_weakly_hard(Pipeline& pipeline, const WeaklyHardQuery& query) {
  QueryResult out;
  const Expected<int> chain = resolve_chain(pipeline.system(), query.chain);
  if (!chain) {
    out.status = chain.status();
    return out;
  }
  const auto answer = capture([&] {
    WHARF_EXPECT(query.m >= 0, "weakly-hard m must be >= 0, got " << query.m);
    const DmmResult r = pipeline.dmm(chain.value(), query.k);
    return WeaklyHardAnswer{query.chain, query.m,    query.k,
                            r.dmm,       r.status,   r.dmm <= query.m};
  });
  if (answer) {
    out.answer = answer.value();
  } else {
    out.status = answer.status();
  }
  return out;
}

/// Resolves a path's chain names into a PathSpec, or a not-found Status.
Expected<PathSpec> resolve_path(const System& system, const std::vector<std::string>& names) {
  PathSpec spec;
  for (const std::string& name : names) {
    const Expected<int> chain = resolve_chain(system, name);
    if (!chain) return chain.status();
    spec.chains.push_back(chain.value());
  }
  return spec;
}

QueryResult run_path_latency(Pipeline& pipeline, const PathLatencyQuery& query) {
  QueryResult out;
  const Expected<PathSpec> spec = resolve_path(pipeline.system(), query.chains);
  if (!spec) {
    out.status = spec.status();
    return out;
  }
  const auto answer =
      capture([&] { return PathLatencyAnswer{query.chains, pipeline.path_latency(spec.value())}; });
  if (answer) {
    out.answer = answer.value();
  } else {
    out.status = answer.status();
  }
  return out;
}

QueryResult run_path_dmm(Pipeline& pipeline, const PathDmmQuery& query) {
  QueryResult out;
  const Expected<PathSpec> resolved = resolve_path(pipeline.system(), query.chains);
  if (!resolved) {
    out.status = resolved.status();
    return out;
  }
  const auto answer = capture([&] {
    WHARF_EXPECT(query.deadline >= 1,
                 "path DMM requires a deadline >= 1, got " << query.deadline);
    PathSpec spec = resolved.value();
    spec.deadline = query.deadline;
    spec.budgets = query.budgets;
    const std::vector<Count> ks = query.ks.empty() ? std::vector<Count>{10} : query.ks;
    PathDmmAnswer a{query.chains, {}};
    a.curve.reserve(ks.size());
    for (const Count k : ks) a.curve.push_back(pipeline.path_dmm(spec, k));
    return a;
  });
  if (answer) {
    out.answer = answer.value();
  } else {
    out.status = answer.status();
  }
  return out;
}

QueryResult run_simulation(Pipeline& pipeline, const SimulationQuery& query) {
  QueryResult out;
  const auto answer = capture([&] {
    WHARF_EXPECT(query.horizon >= 1, "simulation horizon must be >= 1, got " << query.horizon);
    WHARF_EXPECT(query.check_k >= 1, "simulation check_k must be >= 1, got " << query.check_k);
    const System& system = pipeline.system();

    std::vector<std::vector<Time>> arrivals;
    arrivals.reserve(static_cast<std::size_t>(system.size()));
    for (int c = 0; c < system.size(); ++c) {
      const ArrivalModel& model = system.chain(c).arrival();
      if (query.extra_gap < 0) {
        arrivals.push_back(sim::greedy_arrivals(model, 0, query.horizon));
      } else {
        arrivals.push_back(sim::random_arrivals(model, 0, query.horizon, query.extra_gap,
                                                query.seed + static_cast<std::uint64_t>(c)));
      }
    }
    sim::SimOptions sim_options;
    sim_options.record_trace = query.record_trace;
    sim::SimResult run = sim::simulate(system, arrivals, sim_options);

    SimulationAnswer a;
    a.makespan = run.makespan;
    a.trace = std::move(run.trace);
    for (int c = 0; c < system.size(); ++c) {
      const sim::ChainResult& cr = run.chains[static_cast<std::size_t>(c)];
      SimulationAnswer::ChainStats stats;
      stats.chain = system.chain(c).name();
      stats.completed = cr.completed;
      stats.max_latency = cr.max_latency;
      stats.miss_count = cr.miss_count;
      stats.max_window_misses = cr.instances.empty() ? 0 : cr.max_misses_in_window(query.check_k);
      a.chains.push_back(std::move(stats));
    }

    if (query.cross_validate) {
      for (const int c : system.regular_indices()) {
        const auto& stats = a.chains[static_cast<std::size_t>(c)];
        const LatencyResult& bound = *pipeline.latency(c);
        if (bound.bounded && stats.max_latency > bound.wcl) {
          a.violations.push_back(util::cat("chain '", stats.chain, "': simulated latency ",
                                           stats.max_latency, " exceeds WCL bound ", bound.wcl));
        }
        if (!system.chain(c).deadline().has_value()) continue;
        // The dmm bound is claimed only under the paper's standing
        // assumption: at most one activation per overload chain within
        // any busy window.  Check it exactly on the observed run (as
        // the property suite does) and skip the dmm comparison for
        // runs outside that regime.
        const auto windows = sim::observed_busy_windows(run.chains[static_cast<std::size_t>(c)]);
        bool assumption_holds = true;
        for (const int o : system.overload_indices()) {
          assumption_holds =
              assumption_holds &&
              sim::at_most_one_arrival_per_window(windows,
                                                  arrivals[static_cast<std::size_t>(o)]);
        }
        if (!assumption_holds) continue;
        const DmmResult dmm = pipeline.dmm(c, query.check_k);
        if (dmm.status != DmmStatus::kNoGuarantee && stats.max_window_misses > dmm.dmm) {
          a.violations.push_back(util::cat("chain '", stats.chain, "': ",
                                           stats.max_window_misses, " misses in a window of ",
                                           query.check_k, " exceed dmm bound ", dmm.dmm));
        }
      }
      a.validated = a.violations.empty();
    }
    return a;
  });
  if (answer) {
    out.answer = answer.value();
  } else {
    out.status = answer.status();
  }
  return out;
}

/// Scores candidates against the session's shared store: the search
/// warms, and profits from, the same artifacts as every other query,
/// and hill-climb neighborhoods evaluate on the worker pool.
QueryResult run_search(ArtifactStore& store, int jobs, std::size_t concurrent_tasks,
                       const System& system, const TwcaOptions& options,
                       const PrioritySearchQuery& query) {
  QueryResult out;
  const auto answer = capture([&] {
    const search::EvaluationSpec spec{query.k, {}};
    // The session already spreads the serving call's query tasks over
    // the worker pool; give the evaluator the pool width only when this
    // search has the pool to itself, so neither a multi-query request
    // nor a batch of single-query requests can fan out jobs^2 threads
    // (parallel_for_index spawns per call).
    const int evaluator_jobs = concurrent_tasks > 1 ? 1 : jobs;
    search::PipelineEvaluator evaluator(system, spec, options, store, evaluator_jobs);
    SearchAnswer a;
    a.nominal = evaluator.evaluate(system.flat_priorities());
    switch (query.strategy) {
      case PrioritySearchQuery::Strategy::kRandom:
        WHARF_EXPECT(query.budget >= 1, "search budget must be >= 1, got " << query.budget);
        a.result = search::random_search(evaluator, query.budget, query.seed);
        break;
      case PrioritySearchQuery::Strategy::kExhaustive:
        a.result = search::exhaustive_search(evaluator, query.max_permutations);
        break;
      case PrioritySearchQuery::Strategy::kHillClimb: {
        WHARF_EXPECT(query.budget >= 1, "search budget must be >= 1, got " << query.budget);
        WHARF_EXPECT(query.restarts >= 1, "climb restarts must be >= 1, got " << query.restarts);
        search::HillClimbOptions climb;
        climb.restarts = query.restarts;
        climb.max_steps = query.budget;
        climb.seed = query.seed;
        a.result = search::hill_climb(evaluator, climb);
        break;
      }
    }
    a.stats = evaluator.stats();
    return a;
  });
  if (answer) {
    out.answer = answer.value();
  } else {
    out.status = answer.status();
  }
  return out;
}

// ---------------------------------------------------------------------
// Delta application
// ---------------------------------------------------------------------

Chain::Spec spec_of(const Chain& chain) {
  Chain::Spec spec;
  spec.name = chain.name();
  spec.kind = chain.kind();
  spec.arrival = chain.arrival_ptr();
  spec.deadline = chain.deadline();
  spec.overload = chain.is_overload();
  spec.tasks = chain.tasks();
  return spec;
}

int find_spec(const std::vector<Chain::Spec>& specs, const std::string& chain_name) {
  for (std::size_t c = 0; c < specs.size(); ++c) {
    if (specs[c].name == chain_name) return static_cast<int>(c);
  }
  return -1;
}

/// Resolves a dotted "chain.task" name against the evolving spec list.
/// Chain and task names may themselves contain dots, so every split
/// position is tried; exactly one must resolve (zero is not-found, two+
/// is a refusal — never a silent wrong-task pick).
Status find_task_spec(const std::vector<Chain::Spec>& specs, const std::string& dotted,
                      int& chain, int& task) {
  if (dotted.find('.') == std::string::npos) {
    return Status::invalid_argument(
        util::cat("task reference '", dotted, "' must be dotted 'chain.task'"));
  }
  int matches = 0;
  for (auto dot = dotted.find('.'); dot != std::string::npos; dot = dotted.find('.', dot + 1)) {
    const int c = find_spec(specs, dotted.substr(0, dot));
    if (c < 0) continue;
    const std::string task_name = dotted.substr(dot + 1);
    const auto& tasks = specs[static_cast<std::size_t>(c)].tasks;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (tasks[t].name == task_name) {
        ++matches;
        chain = c;
        task = static_cast<int>(t);
      }
    }
  }
  if (matches == 0) return Status::not_found(util::cat("unknown task '", dotted, "'"));
  if (matches > 1) {
    return Status::invalid_argument(
        util::cat("ambiguous task reference '", dotted,
                  "' (several chain.task splits resolve; rename to disambiguate)"));
  }
  return Status::ok();
}

/// Applies one delta to the evolving spec list (name resolution and
/// value plumbing only — model invariants are validated when the system
/// is rebuilt at the end of the batch).
Status apply_one(std::vector<Chain::Spec>& specs, const Delta& delta) {
  return std::visit(
      [&](const auto& d) -> Status {
        using D = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<D, SetPriorityDelta>) {
          int chain = -1;
          int task = -1;
          const Status found = find_task_spec(specs, d.task, chain, task);
          if (!found.is_ok()) return found;
          specs[static_cast<std::size_t>(chain)].tasks[static_cast<std::size_t>(task)].priority =
              d.priority;
          return Status::ok();
        } else if constexpr (std::is_same_v<D, SetWcetDelta>) {
          int chain = -1;
          int task = -1;
          const Status found = find_task_spec(specs, d.task, chain, task);
          if (!found.is_ok()) return found;
          specs[static_cast<std::size_t>(chain)].tasks[static_cast<std::size_t>(task)].wcet =
              d.wcet;
          return Status::ok();
        } else if constexpr (std::is_same_v<D, SetDeadlineDelta>) {
          const int chain = find_spec(specs, d.chain);
          if (chain < 0) return Status::not_found(util::cat("unknown chain '", d.chain, "'"));
          specs[static_cast<std::size_t>(chain)].deadline = d.deadline;
          return Status::ok();
        } else if constexpr (std::is_same_v<D, SetArrivalDelta>) {
          const int chain = find_spec(specs, d.chain);
          if (chain < 0) return Status::not_found(util::cat("unknown chain '", d.chain, "'"));
          const auto parsed = capture([&] { return parse_arrival(d.arrival); });
          if (!parsed) return parsed.status();
          specs[static_cast<std::size_t>(chain)].arrival = parsed.value();
          return Status::ok();
        } else if constexpr (std::is_same_v<D, AddChainDelta>) {
          specs.push_back(spec_of(d.chain));
          return Status::ok();
        } else {
          static_assert(std::is_same_v<D, RemoveChainDelta>);
          const int chain = find_spec(specs, d.chain);
          if (chain < 0) return Status::not_found(util::cat("unknown chain '", d.chain, "'"));
          specs.erase(specs.begin() + chain);
          return Status::ok();
        }
      },
      delta);
}

/// The whole batch against `base`: evolving specs, then one rebuild
/// whose validation failures surface as invalid-argument.
Expected<System> mutate(const System& base, const std::vector<Delta>& deltas) {
  std::vector<Chain::Spec> specs;
  specs.reserve(base.chains().size());
  for (const Chain& chain : base.chains()) specs.push_back(spec_of(chain));
  for (const Delta& delta : deltas) {
    const Status applied = apply_one(specs, delta);
    if (!applied.is_ok()) return applied;
  }
  return capture([&] {
    std::vector<Chain> chains;
    chains.reserve(specs.size());
    for (Chain::Spec& spec : specs) chains.emplace_back(std::move(spec));
    return System(base.name(), std::move(chains));
  });
}

}  // namespace

bool is_structural(const Delta& delta) {
  return !std::holds_alternative<SetPriorityDelta>(delta);
}

// ---------------------------------------------------------------------
// SessionStats
// ---------------------------------------------------------------------

std::size_t SessionStats::lookups() const {
  std::size_t n = 0;
  for (const StageDiagnostics& s : stages) n += s.lookups;
  return n;
}

std::size_t SessionStats::hits() const {
  std::size_t n = 0;
  for (const StageDiagnostics& s : stages) n += s.hits;
  return n;
}

std::size_t SessionStats::misses() const {
  std::size_t n = 0;
  for (const StageDiagnostics& s : stages) n += s.misses;
  return n;
}

std::size_t SessionStats::shared() const {
  std::size_t n = 0;
  for (const StageDiagnostics& s : stages) n += s.shared;
  return n;
}

// ---------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------

struct Session::Impl {
  ArtifactStore* store = nullptr;
  TwcaOptions options;
  int jobs = 1;
  std::shared_ptr<const System> model;
  std::shared_ptr<SliceCache> slices;
  std::uint64_t epoch = 0;
  std::uint64_t revision = 0;
  long long deltas_applied = 0;
  std::atomic<long long> queries_served{0};
  std::unique_ptr<Pipeline> pipeline;
  /// Stage counters of pipelines retired by apply().
  Stages retired{};
  /// Slice-memo counters of caches detached by structural apply().
  SliceCache::Stats retired_slices{};
  /// Totals already handed out through collect() — the baseline of the
  /// next report's per-call diagnostics.
  Stages reported{};

  void reset_pipeline() {
    pipeline = std::make_unique<Pipeline>(*model, options, *store, epoch, jobs, slices.get());
  }

  [[nodiscard]] Stages lifetime_stages() const {
    return add(retired, pipeline->stage_diagnostics());
  }
};

Session::Session(System system, TwcaOptions options, ArtifactStore& store, int jobs)
    : Session(std::move(system), options, store, jobs, store.begin_epoch()) {}

Session::Session(System system, TwcaOptions options, ArtifactStore& store, int jobs,
                 std::uint64_t epoch)
    : Session(std::move(system), options, store, jobs, epoch, nullptr) {}

Session::Session(System system, TwcaOptions options, ArtifactStore& store, int jobs,
                 std::uint64_t epoch, std::shared_ptr<SliceCache> slices)
    : impl_(std::make_unique<Impl>()) {
  impl_->store = &store;
  impl_->options = options;
  impl_->jobs = jobs;
  impl_->model = std::make_shared<const System>(std::move(system));
  impl_->slices = slices != nullptr ? std::move(slices) : std::make_shared<SliceCache>();
  impl_->epoch = epoch;
  impl_->reset_pipeline();
}

Session::~Session() = default;
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;

const System& Session::system() const { return *impl_->model; }
const TwcaOptions& Session::options() const { return impl_->options; }
std::uint64_t Session::revision() const { return impl_->revision; }

Status Session::apply(const std::vector<Delta>& deltas) {
  Expected<System> mutated = mutate(*impl_->model, deltas);
  if (!mutated) return mutated.status();

  // Commit: retire the current pipeline's telemetry, swap the model in,
  // and open a new store epoch so artifacts computed before this batch
  // classify as hits from now on.
  impl_->retired = impl_->lifetime_stages();
  impl_->pipeline.reset();
  impl_->model = std::make_shared<const System>(std::move(mutated).value());
  if (std::any_of(deltas.begin(), deltas.end(),
                  [](const Delta& d) { return is_structural(d); })) {
    // Detach rather than invalidate(): speculative sessions sharing the
    // old cache keep a consistent (old-structure) memo of their own,
    // and this session re-keys against a fresh one — no window where a
    // live candidate repopulates entries the new structure would read.
    const SliceCache::Stats old = impl_->slices->stats();
    impl_->retired_slices.hits += old.hits;
    impl_->retired_slices.misses += old.misses;
    impl_->slices = std::make_shared<SliceCache>();
  }
  impl_->epoch = impl_->store->begin_epoch();
  impl_->reset_pipeline();
  ++impl_->revision;
  impl_->deltas_applied += static_cast<long long>(deltas.size());
  return Status::ok();
}

Session Session::speculate(const std::vector<Delta>& deltas, int jobs) const {
  Expected<System> mutated = mutate(*impl_->model, deltas);
  WHARF_EXPECT(mutated.has_value(),
               "invalid speculative delta batch: " << mutated.status().to_string());
  // Priority-only candidates keep the structural content, so they may
  // share (and extend) this session's per-chain key-fragment memo;
  // structural candidates get their own.
  const bool structural = std::any_of(deltas.begin(), deltas.end(),
                                      [](const Delta& d) { return is_structural(d); });
  return Session(std::move(mutated).value(), impl_->options, *impl_->store,
                 jobs < 0 ? impl_->jobs : jobs, impl_->store->begin_epoch(),
                 structural ? nullptr : impl_->slices);
}

QueryResult Session::execute(const Query& query, std::size_t concurrent_tasks) {
  impl_->queries_served.fetch_add(1, std::memory_order_relaxed);
  return std::visit(
      [&](const auto& q) -> QueryResult {
        using Q = std::decay_t<decltype(q)>;
        if constexpr (std::is_same_v<Q, LatencyQuery>) {
          return run_latency(*impl_->pipeline, q);
        } else if constexpr (std::is_same_v<Q, DmmQuery>) {
          return run_dmm(*impl_->pipeline, q);
        } else if constexpr (std::is_same_v<Q, WeaklyHardQuery>) {
          return run_weakly_hard(*impl_->pipeline, q);
        } else if constexpr (std::is_same_v<Q, SimulationQuery>) {
          return run_simulation(*impl_->pipeline, q);
        } else if constexpr (std::is_same_v<Q, PathLatencyQuery>) {
          return run_path_latency(*impl_->pipeline, q);
        } else if constexpr (std::is_same_v<Q, PathDmmQuery>) {
          return run_path_dmm(*impl_->pipeline, q);
        } else {
          return run_search(*impl_->store, impl_->jobs, concurrent_tasks, *impl_->model,
                            impl_->options, q);
        }
      },
      query);
}

QueryResult Session::query(const Query& query) { return execute(query, 1); }

AnalysisReport Session::collect(std::vector<QueryResult> results) {
  AnalysisReport report;
  report.system = impl_->model->name();
  report.results = std::move(results);
  report.diagnostics.system_hash = fingerprint();

  const Stages lifetime = impl_->lifetime_stages();
  report.diagnostics.stages = sub(lifetime, impl_->reported);
  impl_->reported = lifetime;

  std::size_t lookups = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t shared = 0;
  for (const StageDiagnostics& stage : report.diagnostics.stages) {
    lookups += stage.lookups;
    hits += stage.hits;
    misses += stage.misses;
    shared += stage.shared;
  }
  report.diagnostics.cache_hits = hits;
  report.diagnostics.cache_misses = misses;
  report.diagnostics.cache_shared = shared;
  report.diagnostics.cache_hit = lookups > 0 && misses == 0 && shared == 0;
  report.diagnostics.queries_failed = static_cast<std::size_t>(
      std::count_if(report.results.begin(), report.results.end(),
                    [](const QueryResult& r) { return !r.ok(); }));
  for (const QueryResult& r : report.results) {
    if (const auto* search = std::get_if<SearchAnswer>(&r.answer)) {
      report.diagnostics.search_evaluations += search->stats.evaluations;
      report.diagnostics.search_hits += search->stats.hits();
      report.diagnostics.search_misses += search->stats.misses();
      report.diagnostics.search_shared += search->stats.shared();
    }
  }
  return report;
}

AnalysisReport Session::serve(const std::vector<Query>& queries) {
  // Collect the busy-window members this batch will resolve and prime
  // them as one coarse batched store artifact before fanning out (see
  // Pipeline::prime_busy_windows): concurrent connections running the
  // same batch then join a single in-flight computation instead of
  // racing on µs-scale per-target flights.  Unknown chain names are
  // skipped here — the individual queries report them.
  std::vector<std::pair<int, bool>> members;
  for (const Query& query : queries) {
    if (const auto* latency = std::get_if<LatencyQuery>(&query)) {
      if (const auto index = impl_->model->chain_index(latency->chain)) {
        members.emplace_back(*index, latency->without_overload);
      }
    } else if (const auto* dmm = std::get_if<DmmQuery>(&query)) {
      if (const auto index = impl_->model->chain_index(dmm->chain)) {
        if (!impl_->model->chain(*index).is_overload()) members.emplace_back(*index, false);
      }
    } else if (const auto* weakly = std::get_if<WeaklyHardQuery>(&query)) {
      if (const auto index = impl_->model->chain_index(weakly->chain)) {
        if (!impl_->model->chain(*index).is_overload()) members.emplace_back(*index, false);
      }
    } else if (const auto* path = std::get_if<PathLatencyQuery>(&query)) {
      for (const std::string& name : path->chains) {
        if (const auto index = impl_->model->chain_index(name)) {
          members.emplace_back(*index, false);
        }
      }
    }
  }
  impl_->pipeline->prime_busy_windows(members);

  std::vector<QueryResult> results(queries.size());
  util::parallel_for_index(queries.size(), impl_->jobs, [&](std::size_t q) {
    results[q] = execute(queries[q], queries.size());
  });
  return collect(std::move(results));
}

LatencyResult Session::latency(int chain, bool without_overload) {
  return without_overload ? *impl_->pipeline->latency_without_overload(chain)
                          : *impl_->pipeline->latency(chain);
}

DmmResult Session::dmm(int chain, Count k) { return impl_->pipeline->dmm(chain, k); }

std::vector<search::Objective> Session::evaluate_candidates(
    const std::vector<std::vector<Priority>>& candidates, Count k) {
  WHARF_EXPECT(k >= 1, "evaluation horizon k must be >= 1, got " << k);
  // Same construction as run_search: candidates speculate off a base
  // session against the shared store, so a sweep worker's units reuse
  // every artifact earlier units (or a warm snapshot) already solved.
  const search::EvaluationSpec spec{k, {}};
  search::PipelineEvaluator evaluator(*impl_->model, spec, impl_->options, *impl_->store,
                                      impl_->jobs);
  return evaluator.evaluate_many(candidates);
}

std::uint64_t Session::fingerprint() const {
  return util::fnv1a64(model_fingerprint(*impl_->model, impl_->options));
}

SessionStats Session::stats() const {
  SessionStats out;
  out.revision = impl_->revision;
  out.deltas_applied = impl_->deltas_applied;
  out.queries_served = impl_->queries_served.load(std::memory_order_relaxed);
  out.stages = impl_->lifetime_stages();
  out.slices = impl_->slices->stats();
  out.slices.hits += impl_->retired_slices.hits;
  out.slices.misses += impl_->retired_slices.misses;
  return out;
}

}  // namespace wharf
