#include "engine/artifact_store.hpp"

#include <utility>

namespace wharf {

namespace {

std::string tagged_key(ArtifactStage stage, const std::string& key) {
  std::string tagged;
  tagged.reserve(key.size() + 2);
  tagged.push_back(static_cast<char>('0' + static_cast<int>(stage)));
  tagged.push_back('|');
  tagged.append(key);
  return tagged;
}

std::size_t stage_index(ArtifactStage stage) {
  return static_cast<std::size_t>(static_cast<int>(stage));
}

}  // namespace

const char* to_string(ArtifactStage stage) {
  switch (stage) {
    case ArtifactStage::kInterference: return "interference";
    case ArtifactStage::kBusyWindow: return "busy_window";
    case ArtifactStage::kOverload: return "overload";
    case ArtifactStage::kDmmCurve: return "dmm_curve";
    case ArtifactStage::kIlp: return "ilp";
  }
  return "unknown";
}

ArtifactStore::ArtifactStore(std::size_t byte_budget) : byte_budget_(byte_budget) {}

std::uint64_t ArtifactStore::begin_epoch() {
  const util::MutexLock guard(mutex_);
  return ++epoch_;
}

std::optional<ArtifactStore::Found> ArtifactStore::lookup(ArtifactStage stage,
                                                          const std::string& key) {
  const std::string tagged = tagged_key(stage, key);
  const util::MutexLock guard(mutex_);
  const auto it = entries_.find(tagged);
  if (it == entries_.end()) return std::nullopt;
  recency_.splice(recency_.begin(), recency_, it->second.lru);
  return Found{it->second.value, it->second.epoch};
}

void ArtifactStore::insert(ArtifactStage stage, const std::string& key,
                           std::shared_ptr<const void> value, std::size_t weight,
                           std::uint8_t type_tag) {
  std::string tagged = tagged_key(stage, key);
  const util::MutexLock guard(mutex_);
  insert_locked(stage, std::move(tagged), std::move(value), weight, type_tag);
}

void ArtifactStore::insert_locked(ArtifactStage stage, std::string tagged,
                                  std::shared_ptr<const void> value, std::size_t weight,
                                  std::uint8_t type_tag) {
  mutex_.assert_held();
  const std::size_t charged = weight + tagged.size();
  StageStats& stats = stage_stats_[stage_index(stage)];
  if (byte_budget_ > 0 && charged > byte_budget_) {
    ++stats.rejected;
    return;
  }
  if (entries_.count(tagged) != 0) return;  // first insertion wins

  recency_.push_front(std::move(tagged));
  Entry entry{std::move(value), stage, type_tag, charged, epoch_, recency_.begin()};
  entries_.emplace(recency_.front(), std::move(entry));
  resident_bytes_ += charged;
  ++stats.insertions;
  ++stats.resident_entries;
  stats.resident_bytes += charged;
  evict_to_budget_locked();
}

ArtifactStore::Resolved ArtifactStore::resolve(ArtifactStage stage, const std::string& key,
                                               const Compute& compute, std::uint8_t type_tag) {
  const std::string tagged = tagged_key(stage, key);
  std::shared_ptr<Flight> flight;
  bool owner = false;
  {
    const util::MutexLock guard(mutex_);
    const auto it = entries_.find(tagged);
    if (it != entries_.end()) {
      recency_.splice(recency_.begin(), recency_, it->second.lru);
      return Resolved{it->second.value, it->second.epoch, ResolveSource::kResident, 0};
    }
    std::shared_ptr<Flight>& slot = flights_[tagged];
    if (!slot) {
      slot = std::make_shared<Flight>();
      owner = true;
    } else {
      ++stage_stats_[stage_index(stage)].flights_shared;
    }
    flight = slot;
  }

  if (!owner) {
    const util::MutexLock lock(flight->mutex);
    while (!flight->done) flight->done_cv.wait(flight->mutex);
    if (flight->error) std::rethrow_exception(flight->error);
    return Resolved{flight->value, 0, ResolveSource::kShared, 0};
  }

  std::shared_ptr<const void> value;
  std::size_t weight = 0;
  try {
    auto made = compute();
    value = std::move(made.first);
    weight = made.second;
  } catch (...) {
    {
      const util::MutexLock guard(mutex_);
      flights_.erase(tagged);
    }
    {
      const util::MutexLock lock(flight->mutex);
      flight->error = std::current_exception();
      flight->done = true;
    }
    flight->done_cv.notify_all();
    throw;
  }

  std::uint64_t inserted_epoch = 0;
  {
    // Publish the entry and retire the flight atomically w.r.t. new
    // resolve() calls: a caller arriving now either finds the entry
    // (resident) or, before this block, the open flight — never neither.
    const util::MutexLock guard(mutex_);
    inserted_epoch = epoch_;
    insert_locked(stage, tagged, value, weight, type_tag);
    flights_.erase(tagged);
  }
  {
    const util::MutexLock lock(flight->mutex);
    flight->value = value;
    flight->done = true;
  }
  flight->done_cv.notify_all();
  return Resolved{std::move(value), inserted_epoch, ResolveSource::kComputed, weight};
}

void ArtifactStore::evict_to_budget_locked() {
  mutex_.assert_held();
  while (byte_budget_ > 0 && resident_bytes_ > byte_budget_ && !recency_.empty()) {
    const auto victim = entries_.find(recency_.back());
    StageStats& stats = stage_stats_[stage_index(victim->second.stage)];
    resident_bytes_ -= victim->second.weight;
    stats.resident_bytes -= victim->second.weight;
    --stats.resident_entries;
    ++stats.evictions;
    entries_.erase(victim);
    recency_.pop_back();
  }
}

ArtifactStore::Stats ArtifactStore::stats() const {
  const util::MutexLock guard(mutex_);
  Stats out;
  out.stage = stage_stats_;
  out.resident_entries = entries_.size();
  out.resident_bytes = resident_bytes_;
  for (const StageStats& s : stage_stats_) out.evictions += s.evictions;
  return out;
}

std::vector<ArtifactStore::ExportedArtifact> ArtifactStore::export_artifacts() const {
  const util::MutexLock guard(mutex_);
  std::vector<ExportedArtifact> out;
  out.reserve(entries_.size());
  // recency_ is most-recent-first; walk from the back so the vector is
  // least-recent-first (re-insertion order reproduces recency).
  for (auto it = recency_.rbegin(); it != recency_.rend(); ++it) {
    const auto found = entries_.find(*it);
    if (found == entries_.end()) continue;
    const Entry& entry = found->second;
    const std::string& tagged = found->first;
    // Strip the "<stage>|" prefix and the key-size share of the charged
    // weight (charged = artifact weight + tagged key bytes).
    ExportedArtifact exported;
    exported.stage = entry.stage;
    exported.type_tag = entry.type_tag;
    exported.key = tagged.substr(2);
    exported.value = entry.value;
    exported.weight = entry.weight >= tagged.size() ? entry.weight - tagged.size() : 0;
    out.push_back(std::move(exported));
  }
  return out;
}

void ArtifactStore::clear() {
  const util::MutexLock guard(mutex_);
  entries_.clear();
  recency_.clear();
  resident_bytes_ = 0;
  for (StageStats& s : stage_stats_) {
    s.resident_entries = 0;
    s.resident_bytes = 0;
  }
}

}  // namespace wharf
