/// \file engine.hpp
/// The unified wharf entry point: a request/response facade over the
/// whole analysis stack (TWCA latency + DMM, weakly-hard checks, path
/// composition, simulation cross-validation, priority synthesis).
///
/// An AnalysisRequest bundles a System with a set of queries; the Engine
/// answers them in an AnalysisReport with one structured, Status-carrying
/// result per query — malformed queries never throw across this
/// boundary, so batch drivers and servers need no exception handling.
///
/// Scaling levers (the reason this facade exists):
///  * batching  — run_batch() answers many requests in one call;
///  * parallelism — independent queries (chains x k-grids x systems) are
///    evaluated on a worker pool (EngineOptions::jobs), with results
///    bit-identical to sequential execution; one target's combination-
///    packing ILP is additionally split across the pool via a
///    work-stealing deque over its independent subproblems;
///  * caching — every pipeline stage (interference contexts, busy
///    windows, overload artifacts, dmm(k) curves, packing-ILP
///    solutions) is cached separately in a shared ArtifactStore, keyed
///    by the model slice the stage reads and size-bounded by artifact
///    weight (EngineOptions::cache_bytes).  Near-identical systems — a
///    design-space sweep mutating one chain at a time — share every
///    artifact the mutation does not touch.  Effectiveness is
///    observable per stage via ReportDiagnostics / cache_stats() /
///    store_stats().
///
/// TwcaAnalyzer remains the internal engine core and stays available for
/// code that wants lower-level control (ablation studies, custom loops).

#ifndef WHARF_ENGINE_ENGINE_HPP
#define WHARF_ENGINE_ENGINE_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/path_analysis.hpp"
#include "core/twca.hpp"
#include "engine/artifact_store.hpp"
#include "engine/pipeline.hpp"
#include "engine/store_persist.hpp"
#include "search/priority_search.hpp"
#include "sim/simulator.hpp"
#include "util/status.hpp"

namespace wharf {

class Session;  // engine/session.hpp

// ---------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------

/// Worst-case latency of one chain (Theorem 2), optionally with all
/// overload chains abstracted away (the paper's "second analysis").
struct LatencyQuery {
  std::string chain;
  bool without_overload = false;
};

/// dmm(k) over a k-grid for one chain (Theorem 3).  Empty `ks` means
/// {10}.
struct DmmQuery {
  std::string chain;
  std::vector<Count> ks;
};

/// Weakly-hard (m,k) verification: does the chain miss at most m
/// deadlines in any k consecutive activations?
struct WeaklyHardQuery {
  std::string chain;
  Count m = 0;
  Count k = 10;
};

/// Discrete-event simulation of the whole system, cross-validated
/// against the analytic bounds (any violation disproves soundness and is
/// reported, never swallowed).
struct SimulationQuery {
  Time horizon = 100'000;
  std::uint64_t seed = 1;
  /// Mean extra inter-arrival gap; < 0 simulates the densest legal
  /// (greedy) arrivals instead of randomized ones.
  double extra_gap = -1.0;
  /// Window for the empirical miss-count cross-check against dmm(k).
  Count check_k = 10;
  bool cross_validate = true;
  /// Record the exact schedule (SimulationAnswer::trace) for rendering.
  bool record_trace = false;
};

/// Priority-assignment synthesis (paper Experiment 2 turned design
/// tool): search permutations for the best weakly-hard objective.
/// Candidates are scored through the engine's shared ArtifactStore
/// (search::PipelineEvaluator), so a pairwise swap re-solves only the
/// slices it changed and neighborhoods evaluate as one work-pool batch —
/// bit-identical to sequential standalone evaluation for any jobs.
struct PrioritySearchQuery {
  enum class Strategy { kRandom, kHillClimb, kExhaustive };
  Strategy strategy = Strategy::kHillClimb;
  Count k = 10;
  int budget = 200;  ///< samples (random) / improving steps per restart (climb)
  int restarts = 4;  ///< independent starting points (climb only)
  std::uint64_t seed = 1;
  /// Guard against factorial blow-up (exhaustive only).
  long long max_permutations = 50'000;
};

/// End-to-end latency of a path: an ordered sequence of distinct,
/// non-overload chains activating each other (WCL_path <= Σ WCL_i; see
/// path_analysis.hpp for the composition argument).
struct PathLatencyQuery {
  std::vector<std::string> chains;  ///< chain names, in path order
};

/// End-to-end deadline miss model of a path over a k-grid: the deadline
/// is split into per-chain budgets (explicit or proportional to the
/// standalone WCLs) and dmm_path(k) <= min(Σ dmm_i^{D_i}(k), k).
struct PathDmmQuery {
  std::vector<std::string> chains;  ///< chain names, in path order
  Time deadline = 0;                ///< end-to-end deadline (required)
  std::vector<Time> budgets;        ///< optional per-chain split (sums to deadline)
  std::vector<Count> ks;            ///< empty means {10}
};

/// Any one query the Engine (and Session) can answer.
using Query = std::variant<LatencyQuery, DmmQuery, WeaklyHardQuery, SimulationQuery,
                           PrioritySearchQuery, PathLatencyQuery, PathDmmQuery>;

/// One unit of work: a system plus the queries to answer on it.
struct AnalysisRequest {
  System system;
  TwcaOptions options = {};
  std::vector<Query> queries;

  /// The standard full-system request (what `wharf analyze` runs): for
  /// every non-overload chain a LatencyQuery with and without overload,
  /// plus a DmmQuery over `ks` (default {10}) when the chain has a
  /// deadline.
  [[nodiscard]] static AnalysisRequest standard(System system, std::vector<Count> ks = {},
                                                TwcaOptions options = {});
};

// ---------------------------------------------------------------------
// Answers
// ---------------------------------------------------------------------

/// Answer to a LatencyQuery: the chain's worst-case latency result.
struct LatencyAnswer {
  std::string chain;
  bool without_overload = false;
  LatencyResult result;
};

/// Answer to a DmmQuery: the dmm(k) curve over the requested k-grid.
struct DmmAnswer {
  std::string chain;
  std::vector<DmmResult> curve;  ///< one entry per requested k, in order
};

/// Answer to a WeaklyHardQuery: dmm(k) compared against the m bound.
struct WeaklyHardAnswer {
  std::string chain;
  Count m = 0;
  Count k = 0;
  Count dmm = 0;
  DmmStatus dmm_status = DmmStatus::kNoGuarantee;
  bool satisfied = false;
};

/// Answer to a SimulationQuery: observed per-chain statistics plus the
/// outcome of the analytic cross-validation.
struct SimulationAnswer {
  /// Observed statistics of one chain over the simulated horizon.
  struct ChainStats {
    std::string chain;
    Count completed = 0;
    Time max_latency = 0;
    Count miss_count = 0;
    Count max_window_misses = 0;  ///< max misses in any check_k window
  };
  std::vector<ChainStats> chains;  ///< indexed like System::chains()
  Time makespan = 0;
  /// Soundness violations found by the cross-check (must stay empty).
  std::vector<std::string> violations;
  bool validated = false;  ///< cross_validate ran and found no violation
  /// Exact schedule when SimulationQuery::record_trace (not in JSON).
  std::vector<sim::ExecSlice> trace;
};

/// Answer to a PrioritySearchQuery: the best assignment found and the
/// store reuse accumulated while scoring candidates.
struct SearchAnswer {
  search::Objective nominal;  ///< objective of the given assignment
  search::SearchResult result;
  /// Store reuse while scoring candidates (includes the nominal
  /// evaluation): per-stage lookups/hits/misses/shared of the search's
  /// pipeline-backed evaluator.
  search::EvaluatorStats stats;
};

/// Answer to a PathLatencyQuery: the composed end-to-end latency bound.
struct PathLatencyAnswer {
  std::vector<std::string> chains;
  PathLatencyResult result;
};

/// Answer to a PathDmmQuery: the composed dmm_path(k) curve.
struct PathDmmAnswer {
  std::vector<std::string> chains;
  std::vector<PathDmmResult> curve;  ///< one entry per requested k, in order
};

/// Outcome of one query: an OK status with an answer, or an error status
/// (unknown chain, invalid arguments, resource caps) with no answer.
struct QueryResult {
  Status status;
  std::variant<std::monostate, LatencyAnswer, DmmAnswer, WeaklyHardAnswer, SimulationAnswer,
               SearchAnswer, PathLatencyAnswer, PathDmmAnswer>
      answer;

  /// True iff the query succeeded (an answer alternative is set).
  [[nodiscard]] bool ok() const { return status.is_ok(); }
};

/// Cache/runtime observability for one served request.
struct ReportDiagnostics {
  /// FNV-1a content hash of the serialized system + analysis options —
  /// the whole-request fingerprint (stage artifacts key on finer model
  /// slices; see core/model_slice.hpp).
  std::uint64_t system_hash = 0;
  /// Derived convenience bool: the request resolved at least one
  /// artifact and every store lookup hit.
  bool cache_hit = false;
  /// Real store lookups this request performed, summed over stages (one
  /// lookup per distinct artifact needed).  A lookup counts as a hit
  /// only when the artifact was resident before this request's epoch
  /// (see artifact_store.hpp); hits are deterministic for any jobs
  /// value, and so is misses + shared (see pipeline.hpp).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Lookups that joined another request's in-flight computation
  /// (store-level single-flight) instead of recomputing.
  std::size_t cache_shared = 0;
  std::size_t queries_failed = 0;
  /// Per-stage lookup/hit/miss/weight breakdown of this request.
  std::array<StageDiagnostics, kArtifactStageCount> stages{};
  /// Search-layer telemetry, summed over this request's priority-search
  /// queries (candidate evaluations score in per-candidate epochs, so
  /// their reuse is tracked here instead of in `stages`).
  long long search_evaluations = 0;
  std::size_t search_hits = 0;
  std::size_t search_misses = 0;
  std::size_t search_shared = 0;
};

/// The response: one QueryResult per request query, index-aligned.
struct AnalysisReport {
  std::string system;  ///< System::name() of the analyzed system
  std::vector<QueryResult> results;
  ReportDiagnostics diagnostics;

  /// True iff every query succeeded.
  [[nodiscard]] bool ok() const;

  /// The most severe outcome for exit-code mapping: the first query
  /// error if any; else kNoGuarantee when any DMM-carrying answer holds
  /// DmmStatus::kNoGuarantee; else OK.
  [[nodiscard]] Status worst_status() const;
};

/// Serializes a report (results + diagnostics) as JSON.  Deterministic:
/// equal reports serialize identically regardless of the jobs knob.
[[nodiscard]] std::string to_json(const AnalysisReport& report);

/// Serializes one result exactly as it appears inside a report's
/// "results" array — the streaming serve path emits per-result frames
/// that are bit-identical to the corresponding monolithic report entry.
[[nodiscard]] std::string to_json(const QueryResult& result);

/// Serializes the diagnostics object exactly as it appears inside a
/// report (the streaming terminal-summary frame embeds it verbatim).
[[nodiscard]] std::string to_json(const ReportDiagnostics& diagnostics);

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// Construction-time knobs of an Engine (immutable afterwards).
struct EngineOptions {
  /// Worker threads for query evaluation and intra-ILP work stealing;
  /// 1 = sequential, 0 = all hardware threads.
  int jobs = 1;
  /// Artifact-store weight budget in bytes (admission and LRU eviction
  /// are by measured artifact weight; 0 = unlimited).
  std::size_t cache_bytes = ArtifactStore::kDefaultByteBudget;
  /// Directory of the persistent artifact snapshot: the engine loads
  /// `store_dir/wharf_store.snapshot` at construction (corrupt or
  /// missing files degrade to a cold start, never an error) and
  /// persist() spills back to it.  Empty = no persistence.
  std::string store_dir{};
  /// Periodic persist-on-idle interval in milliseconds (0 = off, and
  /// always off when store_dir is empty).  When set, a background thread
  /// re-spills the snapshot whenever new artifacts were inserted since
  /// the last save, so a process killed without a graceful shutdown
  /// (SIGKILL'ed sweep worker, OOM) still leaves a warm snapshot behind.
  /// Each save is the same atomic write-temp-then-rename as persist() —
  /// a kill mid-save can never corrupt the previous snapshot.
  long long persist_interval_ms = 0;
};

/// The facade.  Thread-safe: run()/run_batch()/open_session() and the
/// stats accessors may be called from concurrent threads — `wharf
/// serve` opens one session per client connection against a single
/// shared Engine, and identical concurrent lookups coalesce through the
/// store's single-flight table.  The sessions handed out are themselves
/// externally synchronized (see engine/session.hpp); the artifact cache
/// persists across calls and connections.
class Engine {
 public:
  /// Builds an engine (worker pool width + artifact-store budget).
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;

  /// The options the engine was built with.
  [[nodiscard]] const EngineOptions& options() const;

  /// Opens a long-lived session on this engine's shared ArtifactStore:
  /// the stateful API for design-space sweeps — apply typed Deltas,
  /// query incrementally (see engine/session.hpp).  The session must
  /// not outlive the engine.  Thread-safe; the *returned session* is
  /// single-caller (externally synchronized).
  [[nodiscard]] Session open_session(System system, TwcaOptions options = {});

  /// Answers one request.  A thin one-shot adapter over an ephemeral
  /// Session: open, serve every query, close — so the request/response
  /// surface and the session surface provably share one execution path
  /// (bit-identical results for any jobs/cache_bytes).
  [[nodiscard]] AnalysisReport run(const AnalysisRequest& request);

  /// Alias of run() under the session-era name.
  [[nodiscard]] AnalysisReport analyze(const AnalysisRequest& request) { return run(request); }

  /// Answers many requests, evaluating all queries of all requests on
  /// the worker pool.  reports[i] answers requests[i]; every report's
  /// *answers* are bit-identical to what sequential execution produces.
  /// Cache telemetry (ReportDiagnostics stage counters) is demand-driven
  /// and may differ with scheduling when sibling requests of one batch
  /// race on shared artifacts; within run() it is deterministic.
  [[nodiscard]] std::vector<AnalysisReport> run_batch(
      const std::vector<AnalysisRequest>& requests);

  /// Engine-lifetime artifact-store counters, summed over stages
  /// (search-evaluator lookups included).
  struct CacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t shared = 0;  ///< single-flight joins (work saved, not resident)
    std::size_t evictions = 0;
    std::size_t entries = 0;        ///< current resident artifacts
    std::size_t resident_bytes = 0; ///< current resident weight
  };
  /// Lifetime hit/miss/shared totals plus current residency.  Thread-safe.
  [[nodiscard]] CacheStats cache_stats() const;

  /// Full per-stage store statistics (insertions, evictions, admission
  /// rejections, single-flight joins, residency).  Thread-safe.
  [[nodiscard]] ArtifactStore::Stats store_stats() const;

  /// Drops every cached artifact (telemetry counters are kept).
  /// Thread-safe, but answers in-flight on other threads may have
  /// already resolved against the old contents.
  void clear_cache();

  /// What the startup snapshot load found (zeros when store_dir is
  /// empty or the file was absent).  Immutable after construction.
  struct PersistenceStats {
    /// Artifacts restored from the snapshot at construction.
    std::size_t persisted_artifacts = 0;
    /// Records skipped because the snapshot was corrupt, truncated, or
    /// version-mismatched (the engine started cold instead).
    std::size_t load_skipped_corrupt = 0;
    /// Why the load fell back cold ("" when it didn't).
    std::string load_reason;
  };
  /// The startup-load outcome for diagnostics surfaces.  Thread-safe.
  [[nodiscard]] const PersistenceStats& persistence_stats() const;

  /// Spills the store to `store_dir` (no-op OK result when store_dir is
  /// empty).  Atomic: a failure leaves any previous snapshot intact.
  /// Thread-safe, but artifacts inserted concurrently may miss the cut.
  [[nodiscard]] StoreSaveResult persist() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wharf

#endif  // WHARF_ENGINE_ENGINE_HPP
