/// \file artifact_store.hpp
/// The staged artifact store behind wharf::Engine: a shared,
/// weight-accounted, LRU-evicting cache of analysis-stage results.
///
/// Where PR 1's engine cached one opaque analyzer per system, the store
/// caches every pipeline stage separately — interference contexts, busy
/// windows, overload artifacts, dmm(k) results, packing-ILP solutions —
/// keyed by a canonical serialization of the model slice the stage
/// actually reads (core/model_slice.hpp).  Two requests that differ in
/// one chain's priority therefore share every artifact whose slice is
/// unchanged: a design-space sweep recomputes only what the mutation
/// touches.
///
/// Size accounting is by artifact *weight* (bytes, measured per type via
/// util/weight.hpp) against a configurable byte budget, replacing the
/// old entry-count cap: admission rejects artifacts larger than the
/// whole budget, and eviction drops least-recently-used artifacts —
/// across all stages — until the budget holds.
///
/// Epochs keep per-request diagnostics meaningful under parallelism:
/// the engine begins an epoch per run()/run_batch() call, and a lookup
/// classifies as a *hit* only when the artifact was resident before the
/// current epoch.  Artifacts inserted by a concurrent request of the
/// same batch are shared once resident but count as misses for everyone
/// in that batch.  Request *answers* are bit-identical for any jobs
/// value; batch cache telemetry is demand-driven and may vary with
/// scheduling.
///
/// Cross-request single-flight: resolve() keeps an in-flight table keyed
/// by stage key, so when several callers — worker threads of one batch,
/// sibling requests, concurrent search candidates of one neighborhood —
/// need the same absent artifact at once, exactly one computes it and
/// the others wait and share the result instead of racing (equal keys
/// provably yield equal values, so sharing is transparent).
///
/// Thread-safe: all methods may be called concurrently.

#ifndef WHARF_ENGINE_ARTIFACT_STORE_HPP
#define WHARF_ENGINE_ARTIFACT_STORE_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/model_slice.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace wharf {

struct StoreSaveOptions;  // store_persist.hpp
struct StoreSaveResult;   // store_persist.hpp
struct StoreLoadResult;   // store_persist.hpp

/// The pipeline stages the store distinguishes (one counter set each).
enum class ArtifactStage : int {
  kInterference = 0,  ///< per-target interference contexts (Defs 2-5)
  kBusyWindow,        ///< per-target latency results (Thm 1/2), both variants
  kOverload,          ///< per-target k-independent overload artifacts (Eq. 5 / Def. 9)
  kDmmCurve,          ///< per-(target, k) dmm results (Thm 3)
  kIlp,               ///< packing solutions keyed by problem content
};

inline constexpr std::size_t kArtifactStageCount = 5;

/// Short stable stage name ("interference", "busy_window", ...).
[[nodiscard]] const char* to_string(ArtifactStage stage);

/// The shared staged artifact cache (see the file comment for the key,
/// weight, epoch and single-flight semantics).  Fully thread-safe: all
/// methods may be called concurrently — this is the one object every
/// session, request, search candidate and serve connection of an Engine
/// shares without external locking.
class ArtifactStore {
 public:
  /// Default weight budget: 64 MiB of resident artifacts.
  static constexpr std::size_t kDefaultByteBudget = std::size_t{64} << 20;

  /// `byte_budget` caps resident weight (keys + artifacts); 0 means
  /// unlimited.
  explicit ArtifactStore(std::size_t byte_budget = kDefaultByteBudget);

  /// Starts a new epoch (request/batch boundary) and returns its id.
  std::uint64_t begin_epoch() WHARF_EXCLUDES(mutex_);

  /// A lookup() result: the artifact plus its insertion epoch.
  struct Found {
    std::shared_ptr<const void> value;  ///< type-erased artifact (per stage)
    /// Epoch in which the artifact was inserted (for hit classification).
    std::uint64_t epoch = 0;
  };

  /// Looks an artifact up and bumps its recency.  Does not touch the
  /// per-stage lookup counters — the pipeline owns request-local
  /// counting; the store counts only insertions/evictions/residency.
  [[nodiscard]] std::optional<Found> lookup(ArtifactStage stage, const std::string& key)
      WHARF_EXCLUDES(mutex_);

  /// Inserts an artifact of `weight` bytes.  A key already present is
  /// left untouched (first insertion wins — values for equal keys are
  /// equal by construction).  Artifacts heavier than the whole budget
  /// are rejected, everything else is admitted and the LRU tail is
  /// evicted until the budget holds.  `type_tag` names the concrete
  /// type behind the erased value (ArtifactType in artifact_types.hpp);
  /// entries tagged 0 are skipped by persistence.
  void insert(ArtifactStage stage, const std::string& key,
              std::shared_ptr<const void> value, std::size_t weight,
              std::uint8_t type_tag = 0) WHARF_EXCLUDES(mutex_);

  /// Computation callback of resolve(): produces the artifact and its
  /// weight in bytes.  Runs outside every store lock and may itself call
  /// back into the store for upstream artifacts (stage dependencies are
  /// acyclic, so recursive resolution cannot deadlock the flight table).
  using Compute = std::function<std::pair<std::shared_ptr<const void>, std::size_t>()>;

  /// How resolve() obtained an artifact.
  enum class ResolveSource {
    kResident,  ///< found in the store (recency bumped, like lookup())
    kComputed,  ///< this caller ran `compute` and inserted the result
    kShared,    ///< joined another caller's in-flight computation
  };

  /// A resolve() result: the artifact plus how this caller obtained it.
  struct Resolved {
    std::shared_ptr<const void> value;  ///< type-erased artifact (per stage)
    /// Epoch the artifact was inserted in (meaningful for kResident —
    /// computed/shared artifacts are by definition of this epoch).
    std::uint64_t epoch = 0;
    ResolveSource source = ResolveSource::kComputed;
    /// Weight handed to insert(); non-zero only for kComputed.
    std::size_t weight = 0;
  };

  /// Single-flight resolution: returns the resident artifact when
  /// present; otherwise the *first* caller of `key` runs `compute` and
  /// inserts the result while concurrent callers of the same key wait on
  /// the in-flight entry and share the value instead of recomputing.
  /// When compute throws, every waiter rethrows the same error and the
  /// flight is retired (a later caller computes afresh).  `type_tag` is
  /// recorded on insertion like insert()'s.
  [[nodiscard]] Resolved resolve(ArtifactStage stage, const std::string& key,
                                 const Compute& compute, std::uint8_t type_tag = 0)
      WHARF_EXCLUDES(mutex_);

  /// Monotonic counters plus current residency, per stage.
  struct StageStats {
    std::size_t insertions = 0;
    std::size_t evictions = 0;
    std::size_t rejected = 0;  ///< admission refusals (artifact > budget)
    /// resolve() calls that joined another caller's in-flight
    /// computation (incremented when the caller *starts* waiting, so a
    /// compute callback can observe how many callers share its flight).
    std::size_t flights_shared = 0;
    std::size_t resident_entries = 0;
    std::size_t resident_bytes = 0;
  };
  /// Store-wide totals plus the per-stage StageStats breakdown.
  struct Stats {
    std::array<StageStats, kArtifactStageCount> stage;  ///< indexed by ArtifactStage
    std::size_t resident_entries = 0;  ///< artifacts currently resident
    std::size_t resident_bytes = 0;    ///< their summed weight
    std::size_t evictions = 0;         ///< lifetime LRU evictions
  };
  /// A consistent snapshot of the counters (one lock acquisition).
  [[nodiscard]] Stats stats() const WHARF_EXCLUDES(mutex_);

  /// The configured weight budget in bytes (0 = unlimited).
  [[nodiscard]] std::size_t byte_budget() const { return byte_budget_; }

  /// The store's key-fragment intern table.  Pipelines key their
  /// artifacts through it (compact id-sequence keys), and persistence
  /// resolves key ids back to fragment text through it.  Thread-safe;
  /// lives exactly as long as the store, so interned keys stay
  /// resolvable for every resident entry.
  [[nodiscard]] KeyInterner& interner() { return interner_; }

  /// Read-only interner access (fragment()/size() are const-safe).
  [[nodiscard]] const KeyInterner& interner() const { return interner_; }

  /// One resident artifact as handed to persistence (store_persist.cpp).
  struct ExportedArtifact {
    ArtifactStage stage{};              ///< pipeline stage of the entry
    std::uint8_t type_tag = 0;          ///< ArtifactType behind the void
    std::string key;                    ///< untagged store key
    std::shared_ptr<const void> value;  ///< the artifact itself
    std::size_t weight = 0;             ///< artifact weight (key bytes excluded)
  };

  /// Snapshot of every resident artifact in LRU order, least recent
  /// first — re-inserting in this order reproduces the recency order,
  /// so a loaded store evicts in the same sequence the saved one would
  /// have.  Values are shared (cheap), not copied.
  [[nodiscard]] std::vector<ExportedArtifact> export_artifacts() const WHARF_EXCLUDES(mutex_);

  /// Persists every resident typed artifact to `path` — convenience
  /// front of StoreSnapshot::save() (store_persist.hpp has the format
  /// and durability contract).  Defined in store_persist.cpp.
  [[nodiscard]] StoreSaveResult save(const std::string& path) const;

  /// Loads a snapshot written by save() — convenience front of
  /// StoreSnapshot::load(); corrupt or mismatched files degrade to a
  /// cold start with a reason, never an error.  Defined in
  /// store_persist.cpp.
  [[nodiscard]] StoreLoadResult load(const std::string& path);

  /// Drops every artifact (counters other than residency are kept).
  void clear() WHARF_EXCLUDES(mutex_);

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    ArtifactStage stage{};
    std::uint8_t type_tag = 0;
    std::size_t weight = 0;
    std::uint64_t epoch = 0;
    /// Position in `recency_` (O(1) bump via splice on a hit).
    std::list<std::string>::iterator lru;
  };

  /// One in-flight computation: the owner computes, everyone else waits.
  /// Flight::mutex nests strictly *inside* no other lock — both the
  /// owner and the waiters touch a flight only after releasing the
  /// store's mutex_ (resolve() never holds both), so the two levels
  /// cannot deadlock.
  struct Flight {
    util::Mutex mutex;
    util::CondVar done_cv;
    bool done WHARF_GUARDED_BY(mutex) = false;         ///< compute finished
    std::shared_ptr<const void> value WHARF_GUARDED_BY(mutex);  ///< its result
    std::exception_ptr error WHARF_GUARDED_BY(mutex);  ///< or its exception
  };

  void insert_locked(ArtifactStage stage, std::string tagged,
                     std::shared_ptr<const void> value, std::size_t weight,
                     std::uint8_t type_tag) WHARF_REQUIRES(mutex_);
  void evict_to_budget_locked() WHARF_REQUIRES(mutex_);

  const std::size_t byte_budget_;
  /// Internally synchronized (KeyInterner has its own mutex, which
  /// never nests with mutex_ — key building happens before store calls).
  KeyInterner interner_;
  mutable util::Mutex mutex_;
  std::uint64_t epoch_ WHARF_GUARDED_BY(mutex_) = 0;
  std::size_t resident_bytes_ WHARF_GUARDED_BY(mutex_) = 0;
  /// Keys in recency order, most recent first (LRU eviction from the
  /// back).  Keys are stage-prefixed, so stages never collide.
  std::list<std::string> recency_ WHARF_GUARDED_BY(mutex_);
  std::unordered_map<std::string, Entry> entries_ WHARF_GUARDED_BY(mutex_);
  /// Open single-flight computations by tagged key (resolve()).
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_ WHARF_GUARDED_BY(mutex_);
  std::array<StageStats, kArtifactStageCount> stage_stats_ WHARF_GUARDED_BY(mutex_) = {};
};

}  // namespace wharf

#endif  // WHARF_ENGINE_ARTIFACT_STORE_HPP
