/// \file store_persist.hpp
/// Persistent snapshots of the ArtifactStore — the warm-restart layer.
///
/// A snapshot round-trips every resident, typed artifact (the six
/// ArtifactType values of artifact_types.hpp) through explicit
/// serializers into one versioned binary file:
///
///   magic "WHARFSTO" | u32 format version
///   'S'  string table: u32 fragment count | u64 payload len
///        | (u32 len | bytes)*  | u32 CRC32(payload)
///   'R'* records: u8 stage | u8 type tag | u32 key len | key
///        | u64 payload len | payload | u32 CRC32(stage..payload)
///   'F'  footer: u64 record count | u32 CRC32(count)
///
/// Keys in the file are sequences of *file-local* 4-byte fragment ids
/// into the string-table section (dense, first-appearance order), so a
/// snapshot is portable across processes whose live KeyInterner assigned
/// different ids: load() re-interns each fragment and rebuilds the live
/// key.  The version field sits outside any checksum on purpose — a
/// version mismatch must stay distinguishable from corruption.
///
/// Durability contract: save() builds the entire snapshot in memory,
/// writes it to a temporary file in the target directory, fsyncs, and
/// atomically renames over the final path.  A crash (or the
/// SaveOptions::fail_after_bytes test hook) mid-write never touches the
/// previous snapshot.  load() is all-or-nothing: every record and the
/// footer are verified before anything is inserted, and *any* integrity
/// failure — bad magic, flipped byte, truncation, unknown tag, version
/// mismatch — degrades to a cold start with a reason string and a clean
/// (OK) Status.  Never a crash, never a partially-loaded store.
///
/// Weights are not stored: load() re-measures every deserialized
/// artifact via weight_of() (artifact_types.hpp), so the byte-budget
/// LRU accounting stays correct even if in-memory layout changed
/// between writer and reader builds.

#ifndef WHARF_ENGINE_STORE_PERSIST_HPP
#define WHARF_ENGINE_STORE_PERSIST_HPP

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "engine/artifact_store.hpp"
#include "util/status.hpp"

namespace wharf {

/// Version tag of the snapshot format this build reads and writes.
/// Bump on any incompatible layout change; readers reject other
/// versions (cold start, not corruption).
inline constexpr std::uint32_t kStoreFormatVersion = 1;

/// Knobs of StoreSnapshot::save().
struct StoreSaveOptions {
  /// Test hook simulating a crash mid-spill: the write fails after this
  /// many bytes have reached the temporary file (the final snapshot is
  /// never touched).  Defaults to "never fail".
  std::size_t fail_after_bytes = std::numeric_limits<std::size_t>::max();
};

/// Outcome of StoreSnapshot::save().
struct StoreSaveResult {
  Status status;                    ///< non-OK on I/O failure (nothing replaced)
  std::size_t records_written = 0;  ///< artifacts serialized into the snapshot
  std::size_t records_skipped = 0;  ///< untyped/unserializable entries left out
  std::size_t bytes_written = 0;    ///< final snapshot size in bytes
};

/// Outcome of StoreSnapshot::load().  Corruption is *not* an error
/// status: the contract is a clean fallback to cold, reported via
/// `cold`/`records_skipped`/`reason`.
struct StoreLoadResult {
  Status status;                    ///< always OK for corrupt/missing files
  bool cold = false;                ///< true when nothing was loaded
  std::size_t records_loaded = 0;   ///< artifacts inserted into the store
  std::size_t records_skipped = 0;  ///< > 0 when corruption forced cold
  std::string reason;               ///< why the load fell back cold ("" if warm)
};

/// The snapshot codec: writes a store's resident artifacts to disk and
/// stages them back (see the file comment for format and guarantees).
/// Stateless — both operations are one-shot class functions, also
/// reachable as ArtifactStore::save()/load().
class StoreSnapshot {
 public:
  /// Serializes every resident *typed* artifact of `store` to `path`
  /// (write-temp, fsync, rename).  Entries with ArtifactType::kUntyped
  /// or keys not interned through store.interner() are skipped and
  /// counted.  On failure the previous file at `path` is untouched and
  /// the temporary is removed.
  [[nodiscard]] static StoreSaveResult save(const ArtifactStore& store, const std::string& path,
                                            const StoreSaveOptions& options = {});

  /// Verifies and loads the snapshot at `path` into `store` (insert
  /// semantics: existing keys win, the byte budget evicts normally,
  /// recency is restored least-recent-first).  Missing file: cold, OK
  /// status, empty-ish reason.  Any integrity failure: cold, OK status,
  /// records_skipped > 0, explanatory reason.
  [[nodiscard]] static StoreLoadResult load(ArtifactStore& store, const std::string& path);
};

/// Canonical snapshot filename inside a --store-dir.
[[nodiscard]] std::string store_snapshot_path(const std::string& dir);

/// Creates `dir` if absent, missing parents included (like `mkdir -p`);
/// OK when it already exists.  Non-OK Status when creation fails or
/// `dir` is not a directory.
[[nodiscard]] Status ensure_store_dir(const std::string& dir);

}  // namespace wharf

#endif  // WHARF_ENGINE_STORE_PERSIST_HPP
