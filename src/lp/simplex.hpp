/// \file simplex.hpp
/// Dense two-phase primal simplex for small linear programs.
///
/// This is the in-repo replacement for the MILP solver library the paper's
/// authors used: the TWCA packing ILP (Theorem 3) is tiny and dense, so a
/// textbook tableau simplex under a branch-and-bound wrapper (see
/// `ilp/branch_and_bound.hpp`) reproduces the same optima.
///
/// Problems are stated as:  maximize  cᵀx  subject to  Aᵢx {≤,≥,=} bᵢ,
/// x ≥ 0.  Two-phase initialization handles arbitrary right-hand sides and
/// relations; Bland's rule guarantees termination on degenerate problems.

#ifndef WHARF_LP_SIMPLEX_HPP
#define WHARF_LP_SIMPLEX_HPP

#include <string>
#include <vector>

namespace wharf::lp {

/// Relation of one linear constraint.
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// One row `coeffs · x  rel  rhs` of a linear program.
struct Constraint {
  std::vector<double> coeffs;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

/// A linear program in "maximize" form with non-negative variables.
class Problem {
 public:
  /// Creates a maximization problem over `num_vars` non-negative variables
  /// with the given objective coefficients.
  explicit Problem(std::vector<double> objective) : objective_(std::move(objective)) {}

  /// Number of structural variables.
  [[nodiscard]] int num_vars() const { return static_cast<int>(objective_.size()); }

  /// Number of constraints added so far.
  [[nodiscard]] int num_constraints() const { return static_cast<int>(constraints_.size()); }

  /// Appends `coeffs · x <= rhs`.  `coeffs` must have num_vars() entries.
  void add_le(std::vector<double> coeffs, double rhs);

  /// Appends `coeffs · x >= rhs`.
  void add_ge(std::vector<double> coeffs, double rhs);

  /// Appends `coeffs · x == rhs`.
  void add_eq(std::vector<double> coeffs, double rhs);

  /// Appends a single-variable upper bound `x[var] <= bound`.
  void add_upper_bound(int var, double bound);

  /// Appends a single-variable lower bound `x[var] >= bound`.
  void add_lower_bound(int var, double bound);

  [[nodiscard]] const std::vector<double>& objective() const { return objective_; }
  [[nodiscard]] const std::vector<Constraint>& constraints() const { return constraints_; }

 private:
  void add(std::vector<double> coeffs, Relation rel, double rhs);

  std::vector<double> objective_;
  std::vector<Constraint> constraints_;
};

/// Outcome classification of a solve.
enum class Status { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

/// Human-readable status name ("optimal", "infeasible", ...).
[[nodiscard]] std::string to_string(Status status);

/// Result of `solve`.
struct Solution {
  Status status = Status::kIterationLimit;
  /// Objective value at `x` (only meaningful when status == kOptimal).
  double objective = 0.0;
  /// Structural variable values (size == num_vars when optimal, else empty).
  std::vector<double> x;
  /// Simplex pivot count across both phases (diagnostics).
  int iterations = 0;
};

/// Solver knobs.
struct Options {
  /// Pivot cap across both phases; exceeded => Status::kIterationLimit.
  int max_iterations = 50'000;
  /// Numeric tolerance for reduced costs, ratios and feasibility.
  double eps = 1e-9;
};

/// Solves the LP with a two-phase dense tableau simplex.
[[nodiscard]] Solution solve(const Problem& problem, const Options& options = {});

}  // namespace wharf::lp

#endif  // WHARF_LP_SIMPLEX_HPP
