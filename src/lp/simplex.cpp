#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expect.hpp"

namespace wharf::lp {

void Problem::add(std::vector<double> coeffs, Relation rel, double rhs) {
  WHARF_EXPECT(static_cast<int>(coeffs.size()) == num_vars(),
               "constraint has " << coeffs.size() << " coefficients, problem has " << num_vars()
                                 << " variables");
  WHARF_EXPECT(std::isfinite(rhs), "constraint rhs must be finite");
  for (double c : coeffs) WHARF_EXPECT(std::isfinite(c), "constraint coefficient must be finite");
  constraints_.push_back(Constraint{std::move(coeffs), rel, rhs});
}

void Problem::add_le(std::vector<double> coeffs, double rhs) {
  add(std::move(coeffs), Relation::kLessEqual, rhs);
}

void Problem::add_ge(std::vector<double> coeffs, double rhs) {
  add(std::move(coeffs), Relation::kGreaterEqual, rhs);
}

void Problem::add_eq(std::vector<double> coeffs, double rhs) {
  add(std::move(coeffs), Relation::kEqual, rhs);
}

void Problem::add_upper_bound(int var, double bound) {
  WHARF_EXPECT(var >= 0 && var < num_vars(), "variable index " << var << " out of range");
  std::vector<double> coeffs(static_cast<std::size_t>(num_vars()), 0.0);
  coeffs[static_cast<std::size_t>(var)] = 1.0;
  add_le(std::move(coeffs), bound);
}

void Problem::add_lower_bound(int var, double bound) {
  WHARF_EXPECT(var >= 0 && var < num_vars(), "variable index " << var << " out of range");
  std::vector<double> coeffs(static_cast<std::size_t>(num_vars()), 0.0);
  coeffs[static_cast<std::size_t>(var)] = 1.0;
  add_ge(std::move(coeffs), bound);
}

std::string to_string(Status status) {
  switch (status) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kUnbounded: return "unbounded";
    case Status::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

namespace {

/// Dense tableau state shared by both phases.
///
/// Column layout: [0, n) structural, [n, n+s) slack/surplus, [n+s, total)
/// artificial.  Rows may be dropped (marked inactive) when an artificial
/// variable cannot be pivoted out after phase 1 (redundant constraint).
class Tableau {
 public:
  Tableau(const Problem& problem, double eps) : eps_(eps), n_(problem.num_vars()) {
    const auto& cons = problem.constraints();
    const int m = static_cast<int>(cons.size());

    // Count auxiliary columns.
    int num_slack = 0;
    int num_artificial = 0;
    for (const Constraint& c : cons) {
      const bool flip = c.rhs < 0.0;
      Relation rel = c.relation;
      if (flip && rel != Relation::kEqual) {
        rel = rel == Relation::kLessEqual ? Relation::kGreaterEqual : Relation::kLessEqual;
      }
      if (rel != Relation::kEqual) ++num_slack;
      if (rel != Relation::kLessEqual) ++num_artificial;
    }
    slack_begin_ = n_;
    artificial_begin_ = n_ + num_slack;
    total_cols_ = artificial_begin_ + num_artificial;

    rows_.assign(static_cast<std::size_t>(m),
                 std::vector<double>(static_cast<std::size_t>(total_cols_) + 1, 0.0));
    basis_.assign(static_cast<std::size_t>(m), -1);

    int next_slack = slack_begin_;
    int next_artificial = artificial_begin_;
    for (int i = 0; i < m; ++i) {
      const Constraint& c = cons[static_cast<std::size_t>(i)];
      auto& row = rows_[static_cast<std::size_t>(i)];
      const bool flip = c.rhs < 0.0;
      const double sign = flip ? -1.0 : 1.0;
      for (int j = 0; j < n_; ++j) row[static_cast<std::size_t>(j)] = sign * c.coeffs[static_cast<std::size_t>(j)];
      row[static_cast<std::size_t>(total_cols_)] = sign * c.rhs;

      Relation rel = c.relation;
      if (flip && rel != Relation::kEqual) {
        rel = rel == Relation::kLessEqual ? Relation::kGreaterEqual : Relation::kLessEqual;
      }
      switch (rel) {
        case Relation::kLessEqual:
          row[static_cast<std::size_t>(next_slack)] = 1.0;
          basis_[static_cast<std::size_t>(i)] = next_slack++;
          break;
        case Relation::kGreaterEqual:
          row[static_cast<std::size_t>(next_slack++)] = -1.0;
          row[static_cast<std::size_t>(next_artificial)] = 1.0;
          basis_[static_cast<std::size_t>(i)] = next_artificial++;
          break;
        case Relation::kEqual:
          row[static_cast<std::size_t>(next_artificial)] = 1.0;
          basis_[static_cast<std::size_t>(i)] = next_artificial++;
          break;
      }
    }
    active_.assign(static_cast<std::size_t>(m), true);
  }

  [[nodiscard]] bool has_artificials() const { return artificial_begin_ < total_cols_; }
  [[nodiscard]] bool is_artificial(int col) const { return col >= artificial_begin_; }
  [[nodiscard]] int num_rows() const { return static_cast<int>(rows_.size()); }
  [[nodiscard]] int total_cols() const { return total_cols_; }
  [[nodiscard]] int num_structural() const { return n_; }

  [[nodiscard]] double rhs(int row) const {
    return rows_[static_cast<std::size_t>(row)][static_cast<std::size_t>(total_cols_)];
  }
  [[nodiscard]] int basis(int row) const { return basis_[static_cast<std::size_t>(row)]; }
  [[nodiscard]] bool active(int row) const { return active_[static_cast<std::size_t>(row)]; }

  /// Runs simplex with objective coefficients `cost` (size total_cols_)
  /// using Bland's rule.  Returns kOptimal or kUnbounded / kIterationLimit.
  /// `forbid_artificials` excludes artificial columns from entering.
  Status optimize(const std::vector<double>& cost, bool forbid_artificials, int max_iterations,
                  int& iterations) {
    // Reduced cost row r_j = c_B B^{-1} A_j - c_j, maintained implicitly:
    // recompute from scratch (m and n are small in wharf workloads).
    while (true) {
      std::vector<double> reduced(static_cast<std::size_t>(total_cols_), 0.0);
      compute_reduced_costs(cost, reduced);

      // Bland: choose the lowest-index improving column (r_j < -eps).
      int entering = -1;
      for (int j = 0; j < total_cols_; ++j) {
        if (forbid_artificials && is_artificial(j)) continue;
        if (reduced[static_cast<std::size_t>(j)] < -eps_) {
          entering = j;
          break;
        }
      }
      if (entering < 0) return Status::kOptimal;

      // Ratio test; Bland tie-break on the smallest basis variable index.
      int leaving_row = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < num_rows(); ++i) {
        if (!active(i)) continue;
        const double a = rows_[static_cast<std::size_t>(i)][static_cast<std::size_t>(entering)];
        if (a > eps_) {
          const double ratio = rhs(i) / a;
          if (ratio < best_ratio - eps_ ||
              (ratio < best_ratio + eps_ &&
               (leaving_row < 0 || basis(i) < basis(leaving_row)))) {
            best_ratio = ratio;
            leaving_row = i;
          }
        }
      }
      if (leaving_row < 0) return Status::kUnbounded;

      pivot(leaving_row, entering);
      if (++iterations > max_iterations) return Status::kIterationLimit;
    }
  }

  /// Gaussian pivot making column `col` basic in row `row`.
  void pivot(int row, int col) {
    auto& prow = rows_[static_cast<std::size_t>(row)];
    const double p = prow[static_cast<std::size_t>(col)];
    for (double& v : prow) v /= p;
    for (int i = 0; i < num_rows(); ++i) {
      if (i == row || !active(i)) continue;
      auto& r = rows_[static_cast<std::size_t>(i)];
      const double factor = r[static_cast<std::size_t>(col)];
      if (factor == 0.0) continue;
      for (int j = 0; j <= total_cols_; ++j) {
        r[static_cast<std::size_t>(j)] -= factor * prow[static_cast<std::size_t>(j)];
      }
      // Clamp tiny residue on the pivot column to exactly zero.
      r[static_cast<std::size_t>(col)] = 0.0;
    }
    basis_[static_cast<std::size_t>(row)] = col;
  }

  /// After phase 1: pivot artificial variables out of the basis where
  /// possible; deactivate redundant rows otherwise.
  void eliminate_basic_artificials() {
    for (int i = 0; i < num_rows(); ++i) {
      if (!active(i) || !is_artificial(basis(i))) continue;
      int col = -1;
      for (int j = 0; j < artificial_begin_; ++j) {
        if (std::abs(rows_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) > eps_) {
          col = j;
          break;
        }
      }
      if (col >= 0) {
        pivot(i, col);
      } else {
        active_[static_cast<std::size_t>(i)] = false;  // redundant constraint
      }
    }
  }

  /// Current value of structural variable `j`.
  [[nodiscard]] double value_of(int j) const {
    for (int i = 0; i < num_rows(); ++i) {
      if (active(i) && basis(i) == j) return rhs(i);
    }
    return 0.0;
  }

 private:
  void compute_reduced_costs(const std::vector<double>& cost, std::vector<double>& reduced) const {
    for (int j = 0; j < total_cols_; ++j) {
      double v = -cost[static_cast<std::size_t>(j)];
      for (int i = 0; i < num_rows(); ++i) {
        if (!active(i)) continue;
        const double cb = cost[static_cast<std::size_t>(basis(i))];
        if (cb != 0.0) {
          v += cb * rows_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        }
      }
      reduced[static_cast<std::size_t>(j)] = v;
    }
  }

  double eps_;
  int n_ = 0;
  int slack_begin_ = 0;
  int artificial_begin_ = 0;
  int total_cols_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<int> basis_;
  std::vector<bool> active_;
};

}  // namespace

Solution solve(const Problem& problem, const Options& options) {
  WHARF_EXPECT(problem.num_vars() > 0, "LP must have at least one variable");

  Tableau tableau(problem, options.eps);
  Solution solution;
  solution.iterations = 0;

  // Phase 1: maximize -(sum of artificials); feasible iff optimum is 0.
  if (tableau.has_artificials()) {
    std::vector<double> phase1(static_cast<std::size_t>(tableau.total_cols()), 0.0);
    for (int j = 0; j < tableau.total_cols(); ++j) {
      if (tableau.is_artificial(j)) phase1[static_cast<std::size_t>(j)] = -1.0;
    }
    const Status s =
        tableau.optimize(phase1, /*forbid_artificials=*/false, options.max_iterations,
                         solution.iterations);
    if (s == Status::kIterationLimit) {
      solution.status = s;
      return solution;
    }
    // Unbounded phase 1 is impossible (objective bounded above by 0); an
    // optimum below zero means the original problem is infeasible.
    double artificial_sum = 0.0;
    for (int i = 0; i < tableau.num_rows(); ++i) {
      if (tableau.active(i) && tableau.is_artificial(tableau.basis(i))) {
        artificial_sum += tableau.rhs(i);
      }
    }
    if (artificial_sum > 1e-7) {
      solution.status = Status::kInfeasible;
      return solution;
    }
    tableau.eliminate_basic_artificials();
  }

  // Phase 2: maximize the real objective, artificial columns barred.
  std::vector<double> phase2(static_cast<std::size_t>(tableau.total_cols()), 0.0);
  for (int j = 0; j < tableau.num_structural(); ++j) {
    phase2[static_cast<std::size_t>(j)] = problem.objective()[static_cast<std::size_t>(j)];
  }
  const Status s = tableau.optimize(phase2, /*forbid_artificials=*/true, options.max_iterations,
                                    solution.iterations);
  if (s != Status::kOptimal) {
    solution.status = s;
    return solution;
  }

  solution.status = Status::kOptimal;
  solution.x.resize(static_cast<std::size_t>(problem.num_vars()), 0.0);
  for (int j = 0; j < problem.num_vars(); ++j) {
    solution.x[static_cast<std::size_t>(j)] = tableau.value_of(j);
  }
  solution.objective = 0.0;
  for (int j = 0; j < problem.num_vars(); ++j) {
    solution.objective +=
        problem.objective()[static_cast<std::size_t>(j)] * solution.x[static_cast<std::size_t>(j)];
  }
  return solution;
}

}  // namespace wharf::lp
