/// \file thread_annotations.hpp
/// Clang thread-safety-analysis capability macros (WHARF_GUARDED_BY,
/// WHARF_REQUIRES, ...), expanding to nothing on compilers without the
/// attributes (GCC).  Builds with `-Wthread-safety -Werror` (the CI
/// clang-analyze job; CMake adds -Wthread-safety to every clang build) turn the
/// locking discipline these macros express into compile errors: reading
/// a WHARF_GUARDED_BY member without its mutex, calling a WHARF_REQUIRES
/// function unlocked, or leaking a WHARF_ACQUIRE without the matching
/// release all fail the build.
///
/// The annotations attach to util::Mutex / util::MutexLock / util::CondVar
/// (util/mutex.hpp), not std::mutex: libstdc++'s std::mutex is not a
/// declared capability, and RAII guards instantiated from system headers
/// are exempt from the analysis — so the repo-wide rule (enforced by
/// tools/check_locking.py) is that concurrent code in src/{util,engine,
/// search,io,cli} holds locks only through the annotated wrappers.
///
/// Macro reference (mirror of the Clang documentation's mutex.h example):
///  * WHARF_CAPABILITY(x)        — declares a class to be a lockable capability
///  * WHARF_SCOPED_CAPABILITY    — declares an RAII guard class
///  * WHARF_GUARDED_BY(x)        — member readable/writable only with x held
///  * WHARF_PT_GUARDED_BY(x)     — pointee guarded by x (pointer itself free)
///  * WHARF_REQUIRES(...)        — caller must hold the listed capabilities
///  * WHARF_EXCLUDES(...)        — caller must NOT hold them (non-reentrancy)
///  * WHARF_ACQUIRE(...)/WHARF_RELEASE(...)      — function acquires/releases
///  * WHARF_TRY_ACQUIRE(b, ...)  — acquires iff the return value equals b
///  * WHARF_ASSERT_CAPABILITY(x) — runtime-asserts x is held (AssertHeld)
///  * WHARF_ACQUIRED_BEFORE/AFTER(...) — static lock-order declaration
///  * WHARF_RETURN_CAPABILITY(x) — function returns a reference to capability x
///  * WHARF_NO_THREAD_SAFETY_ANALYSIS — opt a function out (trusted internals)

#ifndef WHARF_UTIL_THREAD_ANNOTATIONS_HPP
#define WHARF_UTIL_THREAD_ANNOTATIONS_HPP

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define WHARF_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#endif
#endif
#ifndef WHARF_THREAD_ANNOTATION_ATTRIBUTE
#define WHARF_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

#define WHARF_CAPABILITY(x) WHARF_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define WHARF_SCOPED_CAPABILITY WHARF_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define WHARF_GUARDED_BY(x) WHARF_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define WHARF_PT_GUARDED_BY(x) WHARF_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define WHARF_ACQUIRED_BEFORE(...) WHARF_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define WHARF_ACQUIRED_AFTER(...) WHARF_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define WHARF_REQUIRES(...) WHARF_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define WHARF_ACQUIRE(...) WHARF_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define WHARF_RELEASE(...) WHARF_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define WHARF_TRY_ACQUIRE(...) WHARF_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define WHARF_EXCLUDES(...) WHARF_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define WHARF_ASSERT_CAPABILITY(x) WHARF_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define WHARF_RETURN_CAPABILITY(x) WHARF_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define WHARF_NO_THREAD_SAFETY_ANALYSIS WHARF_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // WHARF_UTIL_THREAD_ANNOTATIONS_HPP
