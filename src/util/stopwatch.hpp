/// \file stopwatch.hpp
/// Minimal wall-clock stopwatch used by benchmark harness tables.

#ifndef WHARF_UTIL_STOPWATCH_HPP
#define WHARF_UTIL_STOPWATCH_HPP

#include <chrono>

namespace wharf::util {

/// Wall-clock stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

  /// Elapsed time in microseconds.
  [[nodiscard]] double microseconds() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wharf::util

#endif  // WHARF_UTIL_STOPWATCH_HPP
