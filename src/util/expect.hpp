/// \file expect.hpp
/// Error hierarchy and precondition-checking macros.
///
/// The library throws exceptions for malformed inputs (I.5/I.10 of the
/// C++ Core Guidelines: state and enforce preconditions, use exceptions to
/// signal failure).  Analysis *outcomes* such as "no guarantee can be
/// given" are reported through result types, not exceptions.

#ifndef WHARF_UTIL_EXPECT_HPP
#define WHARF_UTIL_EXPECT_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace wharf {

/// Base class of all wharf exceptions.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A caller violated a documented precondition (bad model, bad argument).
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// A textual system description could not be parsed.
class ParseError : public Error {
 public:
  ParseError(std::string message, int line)
      : Error("parse error at line " + std::to_string(line) + ": " + message),
        line_(line) {}

  /// 1-based line number of the offending input line.
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

/// An LP/ILP solver was handed a malformed problem or hit an internal
/// limit (iteration/node caps).
class SolverError : public Error {
 public:
  using Error::Error;
};

/// An analysis hit a configured resource cap (e.g. busy-window search
/// bound) in a way that is a usage error rather than an analysis outcome.
class AnalysisError : public Error {
 public:
  using Error::Error;
};

namespace detail {

[[noreturn]] inline void throw_expect_failure(const char* expr, const char* file, int line,
                                              const std::string& message) {
  std::ostringstream os;
  os << message << " [" << expr << " at " << file << ':' << line << ']';
  throw InvalidArgument(os.str());
}

[[noreturn]] inline void throw_assert_failure(const char* expr, const char* file, int line) {
  std::ostringstream os;
  os << "internal invariant violated: " << expr << " at " << file << ':' << line;
  throw std::logic_error(os.str());
}

}  // namespace detail
}  // namespace wharf

/// Validates a documented precondition; throws wharf::InvalidArgument with
/// the given message on failure.  `msg` may use stream syntax:
/// WHARF_EXPECT(p > 0, "period must be positive, got " << p);
#define WHARF_EXPECT(cond, msg)                                                      \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::ostringstream wharf_expect_os_;                                           \
      wharf_expect_os_ << msg;                                                       \
      ::wharf::detail::throw_expect_failure(#cond, __FILE__, __LINE__,               \
                                            wharf_expect_os_.str());                 \
    }                                                                                \
  } while (false)

/// Internal invariant check (logic errors, not input validation).
#define WHARF_ASSERT(cond)                                                           \
  do {                                                                               \
    if (!(cond)) ::wharf::detail::throw_assert_failure(#cond, __FILE__, __LINE__);   \
  } while (false)

#endif  // WHARF_UTIL_EXPECT_HPP
