#include "util/work_stealing.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "util/first_error.hpp"
#include "util/mutex.hpp"
#include "util/worker_pool.hpp"

namespace wharf::util {

void WorkStealingDeque::push(std::size_t task) {
  const MutexLock guard(mutex_);
  tasks_.push_back(task);
}

bool WorkStealingDeque::pop(std::size_t& task) {
  const MutexLock guard(mutex_);
  if (tasks_.empty()) return false;
  task = tasks_.back();
  tasks_.pop_back();
  return true;
}

bool WorkStealingDeque::steal(std::size_t& task) {
  const MutexLock guard(mutex_);
  if (tasks_.empty()) return false;
  task = tasks_.front();
  tasks_.pop_front();
  return true;
}

std::size_t WorkStealingDeque::size() const {
  const MutexLock guard(mutex_);
  return tasks_.size();
}

void work_steal_for_index(std::size_t n, int jobs,
                          const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (jobs == 0) jobs = hardware_jobs();
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs > 1 ? jobs : 1), n);

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Deal indices round-robin so every worker starts with a share.
  std::vector<WorkStealingDeque> deques(workers);
  for (std::size_t i = 0; i < n; ++i) deques[i % workers].push(i);

  FirstError first_error;

  const auto worker = [&](std::size_t self) {
    for (;;) {
      std::size_t task = 0;
      bool found = deques[self].pop(task);
      for (std::size_t v = 1; !found && v < workers; ++v) {
        found = deques[(self + v) % workers].steal(task);
      }
      // Bodies never enqueue new tasks, so a full scan that finds every
      // deque empty is terminal: this worker is done (no spinning while
      // slower workers drain in-flight tasks).
      if (!found) return;
      first_error.capture([&] { body(task); });
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) threads.emplace_back(worker, t);
  worker(0);  // the caller thread participates
  for (std::thread& t : threads) t.join();

  first_error.rethrow_if_set();
}

}  // namespace wharf::util
