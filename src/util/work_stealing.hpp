/// \file work_stealing.hpp
/// A work-stealing scheduler for irregular task sets.
///
/// parallel_for_index (worker_pool.hpp) hands out indices through one
/// shared atomic counter, which is ideal for many uniform tasks but
/// serializes on the counter and cannot prioritize locality.  The
/// work-stealing scheme here gives every worker its own deque: the owner
/// pushes and pops at the bottom (LIFO, cache-warm), idle workers steal
/// from the top of a victim's deque (FIFO, oldest first).  The ILP layer
/// uses it to spread the independent subproblems of one combination-
/// packing solve across the pool (subproblem sizes are wildly skewed, so
/// stealing beats static division).
///
/// Determinism contract: work_steal_for_index(n, jobs, body) invokes
/// body(i) exactly once for every i in [0, n); bodies write to disjoint,
/// preallocated result slots, so the outcome is identical for any thread
/// count — scheduling only changes *when* a body runs, never *whether*.

#ifndef WHARF_UTIL_WORK_STEALING_HPP
#define WHARF_UTIL_WORK_STEALING_HPP

#include <cstddef>
#include <deque>
#include <functional>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace wharf::util {

/// A mutex-guarded work-stealing deque of task indices.  The owning
/// worker uses push()/pop() (bottom, LIFO); thieves use steal() (top,
/// FIFO).  The lock is uncontended in the common case (owner working on
/// its own deque) and keeps the structure simple enough to run clean
/// under TSan/ASan — this is a scheduler for coarse-grained analysis
/// subproblems, not a lock-free microbenchmark.
class WorkStealingDeque {
 public:
  /// Appends a task at the bottom (owner side).
  void push(std::size_t task) WHARF_EXCLUDES(mutex_);

  /// Pops the most recently pushed task (owner side).  Returns false
  /// when the deque is empty.
  bool pop(std::size_t& task) WHARF_EXCLUDES(mutex_);

  /// Steals the oldest task (thief side).  Returns false when empty.
  bool steal(std::size_t& task) WHARF_EXCLUDES(mutex_);

  /// Snapshot size (approximate under concurrency; exact when quiescent).
  [[nodiscard]] std::size_t size() const WHARF_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::deque<std::size_t> tasks_ WHARF_GUARDED_BY(mutex_);
};

/// Runs body(0), ..., body(n-1) on `jobs` workers with work stealing:
/// indices are dealt round-robin onto per-worker deques, each worker
/// drains its own deque bottom-first, steals from the others when it
/// runs dry, and exits as soon as a full scan finds everything empty
/// (tasks never spawn tasks, so an empty scan is terminal — no
/// spinning).  Workers are transient threads spawned per call and
/// joined before returning; callers nested inside an engine worker pool
/// should size `jobs` accordingly.  jobs <= 1 runs inline on the caller
/// thread; jobs == 0 uses hardware_jobs().  The first exception thrown
/// by any body is rethrown on the caller thread after all workers have
/// drained.
void work_steal_for_index(std::size_t n, int jobs,
                          const std::function<void(std::size_t)>& body);

}  // namespace wharf::util

#endif  // WHARF_UTIL_WORK_STEALING_HPP
