/// \file strings.hpp
/// Small string utilities shared by the parser, serializers and report
/// printers.  (libstdc++ 12 does not ship <format>; `cat` fills the gap.)

#ifndef WHARF_UTIL_STRINGS_HPP
#define WHARF_UTIL_STRINGS_HPP

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace wharf::util {

/// Concatenates all arguments through an ostringstream.
template <typename... Args>
[[nodiscard]] std::string cat(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
  }
}

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits on a single character; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split_whitespace(std::string_view s);

/// Joins `parts` with `sep` between elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a signed 64-bit integer; the full string must be consumed.
/// Returns false on any syntax error or overflow.
[[nodiscard]] bool parse_int64(std::string_view s, long long& out);

/// Parses a double; the full string must be consumed.
[[nodiscard]] bool parse_double(std::string_view s, double& out);

/// Thread-safe strerror: the system message for `errno_value`
/// (std::strerror writes to shared static storage, which the
/// concurrency-mt-unsafe tidy check rightly refuses in a server that
/// formats errors from concurrent connection threads).
[[nodiscard]] std::string errno_message(int errno_value);

}  // namespace wharf::util

#endif  // WHARF_UTIL_STRINGS_HPP
