/// \file types.hpp
/// Fundamental scalar types and saturating integer arithmetic used across
/// the library.
///
/// All timing quantities in the paper (WCETs, periods, deadlines, busy
/// times, latencies) are integral; we model them as 64-bit signed tick
/// counts.  A dedicated sentinel represents "+infinity" (e.g. the maximum
/// distance delta_plus of a sporadic arrival model), and the arithmetic
/// helpers below saturate at that sentinel instead of overflowing.

#ifndef WHARF_UTIL_TYPES_HPP
#define WHARF_UTIL_TYPES_HPP

#include <cstdint>
#include <limits>

namespace wharf {

/// Discrete time / execution demand, in ticks.
using Time = std::int64_t;

/// Event counts (activations, busy-window indices, deadline misses).
using Count = std::int64_t;

/// Scheduling priority.  Larger value means higher priority (matches the
/// paper's case study, where priority 13 preempts priority 1).
using Priority = int;

/// Sentinel for an unbounded time value (e.g. delta_plus of a sporadic
/// model).  All saturating helpers treat this value as absorbing.
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max();

/// Sentinel for an unbounded count (e.g. eta_plus over an infinite window).
inline constexpr Count kCountInfinity = std::numeric_limits<Count>::max();

/// True if `t` is the infinity sentinel.
[[nodiscard]] constexpr bool is_infinite(Time t) noexcept { return t == kTimeInfinity; }

/// Saturating addition: infinity is absorbing, finite overflow clamps to
/// infinity.  Requires non-negative operands (all wharf time quantities
/// are non-negative once validated).
[[nodiscard]] constexpr Time sat_add(Time a, Time b) noexcept {
  if (is_infinite(a) || is_infinite(b)) return kTimeInfinity;
  if (a > kTimeInfinity - b) return kTimeInfinity;
  return a + b;
}

/// Saturating multiplication for non-negative operands; infinity is
/// absorbing except for multiplication by zero, which yields zero (the
/// convention that suits `eta * C` terms where a zero cost nullifies an
/// unbounded activation count).
[[nodiscard]] constexpr Time sat_mul(Time a, Time b) noexcept {
  if (a == 0 || b == 0) return 0;
  if (is_infinite(a) || is_infinite(b)) return kTimeInfinity;
  if (a > kTimeInfinity / b) return kTimeInfinity;
  return a * b;
}

/// Ceiling division for non-negative numerator and positive denominator.
/// Infinity is absorbing, and the quotient/remainder form stays exact for
/// numerators near the representable maximum, where `(num + den - 1)`
/// would overflow.
[[nodiscard]] constexpr Time ceil_div(Time num, Time den) noexcept {
  if (is_infinite(num)) return kTimeInfinity;
  return num / den + static_cast<Time>(num % den != 0);
}

/// Floor division (plain integer division for non-negative operands, kept
/// for symmetry and readability at call sites).
[[nodiscard]] constexpr Time floor_div(Time num, Time den) noexcept {
  return num / den;
}

}  // namespace wharf

#endif  // WHARF_UTIL_TYPES_HPP
