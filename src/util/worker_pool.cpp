#include "util/worker_pool.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace wharf::util {

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void parallel_for_index(std::size_t n, int jobs,
                        const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (jobs == 0) jobs = hardware_jobs();
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs > 1 ? jobs : 1), n);

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_lock;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> guard(error_lock);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) threads.emplace_back(worker);
  worker();  // the caller thread participates
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace wharf::util
