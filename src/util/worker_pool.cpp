#include "util/worker_pool.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "util/first_error.hpp"

namespace wharf::util {

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void parallel_for_index(std::size_t n, int jobs,
                        const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (jobs == 0) jobs = hardware_jobs();
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs > 1 ? jobs : 1), n);

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  FirstError first_error;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      first_error.capture([&] { body(i); });
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) threads.emplace_back(worker);
  worker();  // the caller thread participates
  for (std::thread& t : threads) t.join();

  first_error.rethrow_if_set();
}

}  // namespace wharf::util
