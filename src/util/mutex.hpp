/// \file mutex.hpp
/// The annotated locking vocabulary of wharf: util::Mutex (a std::mutex
/// declared as a Clang thread-safety *capability*), util::MutexLock (the
/// RAII guard the analysis tracks) and util::CondVar (condition waits
/// that keep the capability model honest).  Every mutex-holding class in
/// src/{util,engine,search,io,cli} uses these instead of the std types —
/// std::mutex is not a declared capability and std RAII guards live in
/// system headers the analysis exempts, so locking through them is
/// invisible to `-Wthread-safety`.  tools/check_locking.py enforces the
/// substitution in CI.
///
/// Beyond the static analysis, Mutex tracks its owning thread in debug
/// builds (NDEBUG off: the Debug, ASan/UBSan and TSan CI jobs), so
/// assert_held() gives *runtime* teeth to invariants the annotations
/// cannot express — e.g. a helper reached only through several annotated
/// callers, or lock-order assumptions across distinct objects.
///
/// CondVar waits use explicit `while (!predicate) cv.wait(mutex);` loops
/// rather than predicate lambdas: the analysis checks a lambda body as a
/// separate unannotated function, so guarded reads inside one would
/// either warn or silently escape checking — the explicit loop keeps
/// them inside the annotated caller.

#ifndef WHARF_UTIL_MUTEX_HPP
#define WHARF_UTIL_MUTEX_HPP

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

#ifndef NDEBUG
#include <atomic>
#include <cassert>
#include <thread>
#endif

namespace wharf::util {

/// A std::mutex declared as a thread-safety capability, with debug-build
/// owner tracking behind assert_held().  Satisfies BasicLockable; lock
/// it through MutexLock (or CondVar::wait), never through naked
/// lock()/unlock() pairs — tools/check_locking.py flags those.
class WHARF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Blocks until the capability is exclusively held.
  void lock() WHARF_ACQUIRE() {
    mutex_.lock();
    set_owner();
  }

  /// Releases the capability (caller must hold it).
  void unlock() WHARF_RELEASE() {
    clear_owner();
    mutex_.unlock();
  }

  /// Acquires without blocking; true iff the capability is now held.
  bool try_lock() WHARF_TRY_ACQUIRE(true) {
    const bool acquired = mutex_.try_lock();
    // Owner bookkeeping only when the acquire succeeded.
    if (acquired) set_owner();
    return acquired;
  }

  /// Runtime counterpart of WHARF_REQUIRES for invariants the static
  /// analysis cannot see: aborts (debug builds) unless the calling
  /// thread holds this mutex.  Statically, tells the analysis the
  /// capability is held from here on.
  void assert_held() const WHARF_ASSERT_CAPABILITY(this) {
#ifndef NDEBUG
    // The owner field is atomic, so this racy read stays TSan-clean.
    assert(owner_.load(std::memory_order_relaxed) == std::this_thread::get_id() &&
           "mutex not held by the calling thread");
#endif
  }

 private:
#ifndef NDEBUG
  void set_owner() { owner_.store(std::this_thread::get_id(), std::memory_order_relaxed); }
  void clear_owner() { owner_.store(std::thread::id{}, std::memory_order_relaxed); }
  /// Owning thread id; std::thread::id{} when unheld.  Written only by
  /// the holder (between lock and unlock), read racily by assert_held —
  /// atomic so the debug bookkeeping itself stays TSan-clean.
  std::atomic<std::thread::id> owner_{};
#else
  void set_owner() {}
  void clear_owner() {}
#endif

  std::mutex mutex_;
};

/// RAII guard over a Mutex — the annotated equivalent of
/// std::lock_guard.  Scoped capability: the analysis knows the mutex is
/// held between construction and scope exit (early returns included).
class WHARF_SCOPED_CAPABILITY MutexLock {
 public:
  /// Acquires `mutex` (which must outlive the guard).
  explicit MutexLock(Mutex& mutex) WHARF_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the mutex on scope exit.
  ~MutexLock() WHARF_RELEASE() { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

/// Condition variable over util::Mutex (std::condition_variable_any
/// underneath).  wait() requires the mutex held — the holder-tracking
/// and capability bookkeeping stay correct across the internal
/// unlock/relock because the wait goes through Mutex's own annotated
/// lock()/unlock().  Use an explicit predicate loop at the call site
/// (see the file comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex` and blocks; `mutex` is re-held on
  /// return.  Spurious wakeups happen — always wait in a predicate loop.
  void wait(Mutex& mutex) WHARF_REQUIRES(mutex) { cv_.wait(mutex); }

  /// Timed wait: like wait(), but returns after at most `timeout` even
  /// without a notify (periodic background work — e.g. the engine's
  /// persist-on-idle tick — waits this way so shutdown can interrupt the
  /// sleep).  Returns false on timeout, true when notified; either way
  /// the caller re-checks its predicate, exactly as with wait().
  bool wait_for(Mutex& mutex, std::chrono::milliseconds timeout) WHARF_REQUIRES(mutex) {
    return cv_.wait_for(mutex, timeout) == std::cv_status::no_timeout;
  }

  /// Wakes one / every waiter.
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace wharf::util

#endif  // WHARF_UTIL_MUTEX_HPP
