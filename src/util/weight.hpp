/// \file weight.hpp
/// Byte-weight traits for cache accounting.
///
/// The ArtifactStore admits and evicts by artifact *weight* — the number
/// of bytes an artifact keeps resident — instead of a flat entry count.
/// These helpers measure the common shapes: heap_bytes() returns the
/// heap-owned excess of a value (0 for trivially copyable types), and
/// byte_weight() adds the object itself.  Artifact types compose their
/// weight as sizeof(artifact) plus the heap_bytes of each member, nested
/// members walked by hand.  Weights are estimates (allocator overhead is
/// ignored); what matters is that they are deterministic and
/// proportional to real memory use, so a byte budget bounds residency
/// and eviction order is reproducible.

#ifndef WHARF_UTIL_WEIGHT_HPP
#define WHARF_UTIL_WEIGHT_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

namespace wharf::util {

/// Heap excess of a trivially copyable value: none.
template <typename T, typename = std::enable_if_t<std::is_trivially_copyable_v<T>>>
[[nodiscard]] constexpr std::size_t heap_bytes(const T&) noexcept {
  return 0;
}

/// Heap excess of a string: its character buffer.
[[nodiscard]] inline std::size_t heap_bytes(const std::string& s) noexcept {
  return s.capacity();
}

/// Heap excess of a vector of trivially copyable elements: its buffer.
template <typename T, typename = std::enable_if_t<std::is_trivially_copyable_v<T>>>
[[nodiscard]] std::size_t heap_bytes(const std::vector<T>& v) noexcept {
  return v.capacity() * sizeof(T);
}

/// Heap excess of an engaged optional: that of its value.
template <typename T>
[[nodiscard]] std::size_t heap_bytes(const std::optional<T>& o) {
  return o.has_value() ? heap_bytes(*o) : 0;
}

/// Total weight of a value: the object plus its heap excess.
template <typename T>
[[nodiscard]] std::size_t byte_weight(const T& value) {
  return sizeof(T) + heap_bytes(value);
}

}  // namespace wharf::util

#endif  // WHARF_UTIL_WEIGHT_HPP
