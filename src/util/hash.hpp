/// \file hash.hpp
/// Content hashing for cache keys: 64-bit FNV-1a over byte strings.
///
/// The artifact pipeline keys every stage by a canonical serialization of
/// the model slice the stage reads; the FNV-1a digest of that key is the
/// compact fingerprint surfaced in diagnostics.  Maps are keyed by the
/// full string (never the digest alone), so hash collisions can never
/// serve wrong artifacts.

#ifndef WHARF_UTIL_HASH_HPP
#define WHARF_UTIL_HASH_HPP

#include <cstdint>
#include <string_view>

namespace wharf::util {

/// 64-bit FNV-1a over a byte string.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace wharf::util

#endif  // WHARF_UTIL_HASH_HPP
