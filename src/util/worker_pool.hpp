/// \file worker_pool.hpp
/// A small fork-join worker pool for embarrassingly parallel index
/// ranges.  The Engine uses it to evaluate independent queries
/// (chains x k-grids x systems) concurrently under a --jobs knob.
///
/// Determinism contract: parallel_for_index(n, body) invokes body(i)
/// exactly once for every i in [0, n); bodies write to disjoint,
/// preallocated result slots, so the outcome is identical for any
/// thread count (the Engine's bit-identical-reports guarantee).

#ifndef WHARF_UTIL_WORKER_POOL_HPP
#define WHARF_UTIL_WORKER_POOL_HPP

#include <cstddef>
#include <functional>

namespace wharf::util {

/// Number of hardware threads (>= 1) — the default for jobs=0 knobs.
[[nodiscard]] int hardware_jobs();

/// Runs body(0), ..., body(n-1), distributing indices over `jobs`
/// threads (atomic work stealing).  jobs <= 1 runs inline on the caller
/// thread; jobs == 0 uses hardware_jobs().  The first exception thrown
/// by any body is rethrown on the caller thread after all workers have
/// drained (bodies that already started still complete).
void parallel_for_index(std::size_t n, int jobs,
                        const std::function<void(std::size_t)>& body);

}  // namespace wharf::util

#endif  // WHARF_UTIL_WORKER_POOL_HPP
