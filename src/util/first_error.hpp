/// \file first_error.hpp
/// First-exception collector for fork-join workers: each worker wraps
/// its body in capture(), the fork-join caller rethrows after the join.
/// Replaces the `std::exception_ptr + mutex` pair parallel_for_index and
/// work_steal_for_index used to duplicate, with the locking discipline
/// annotated (util/mutex.hpp) instead of implicit.

#ifndef WHARF_UTIL_FIRST_ERROR_HPP
#define WHARF_UTIL_FIRST_ERROR_HPP

#include <exception>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace wharf::util {

/// Collects the first exception thrown across concurrent workers.
/// Thread-safe: capture() may race from any number of threads;
/// rethrow_if_set() is meant for the caller after every worker joined
/// (it still locks, so a stray concurrent call is safe, just pointless).
class FirstError {
 public:
  /// Runs `body()`; a thrown exception is recorded iff it is the first
  /// (later ones are dropped — one failure fails the whole fork-join).
  template <typename Body>
  void capture(Body&& body) WHARF_EXCLUDES(mutex_) {
    try {
      body();
    } catch (...) {
      const MutexLock guard(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }

  /// Rethrows the recorded exception, if any.
  void rethrow_if_set() WHARF_EXCLUDES(mutex_) {
    std::exception_ptr error;
    {
      const MutexLock guard(mutex_);
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  Mutex mutex_;
  std::exception_ptr error_ WHARF_GUARDED_BY(mutex_);
};

}  // namespace wharf::util

#endif  // WHARF_UTIL_FIRST_ERROR_HPP
