/// \file status.hpp
/// Non-throwing error channel: Status / Expected<T>.
///
/// The core library keeps its exception-based precondition contract
/// (expect.hpp): malformed inputs throw wharf::InvalidArgument and
/// friends.  Servers and batch drivers, however, must never tear down a
/// whole batch because one request was malformed — the Engine facade
/// (src/engine/) therefore reports every per-query outcome as a Status
/// and converts escaping exceptions at the boundary via capture().
///
/// StatusCode also carries the *analysis* outcome kNoGuarantee so the
/// CLI can route "analysis ran but proves nothing" (exit code 3)
/// separately from success (0) and input errors (2).

#ifndef WHARF_UTIL_STATUS_HPP
#define WHARF_UTIL_STATUS_HPP

#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "util/expect.hpp"

namespace wharf {

/// Machine-readable classification of an operation outcome.
enum class StatusCode {
  kOk = 0,
  /// A documented precondition was violated (wharf::InvalidArgument).
  kInvalidArgument,
  /// A named entity (chain, task) does not exist.
  kNotFound,
  /// A textual description could not be parsed (wharf::ParseError).
  kParseError,
  /// A configured resource cap was hit (wharf::SolverError/AnalysisError).
  kResourceExhausted,
  /// The analysis ran but cannot bound the misses (DmmStatus::kNoGuarantee).
  kNoGuarantee,
  /// A request's deadline elapsed before its work started (the async
  /// serve core answers the request with this and skips the work).
  kDeadlineExceeded,
  /// Unexpected internal failure (std::logic_error, unknown exception).
  kInternal,
};

/// Human-readable code name ("ok", "invalid-argument", ...).
[[nodiscard]] inline std::string to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kParseError: return "parse-error";
    case StatusCode::kResourceExhausted: return "resource-exhausted";
    case StatusCode::kNoGuarantee: return "no-guarantee";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

/// An outcome: kOk (empty message) or an error code with a message.
class Status {
 public:
  /// Default: OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return {}; }
  [[nodiscard]] static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  [[nodiscard]] static Status not_found(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  [[nodiscard]] static Status parse_error(std::string m) {
    return {StatusCode::kParseError, std::move(m)};
  }
  [[nodiscard]] static Status resource_exhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  [[nodiscard]] static Status no_guarantee(std::string m) {
    return {StatusCode::kNoGuarantee, std::move(m)};
  }
  [[nodiscard]] static Status deadline_exceeded(std::string m) {
    return {StatusCode::kDeadlineExceeded, std::move(m)};
  }
  [[nodiscard]] static Status internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "ok";
    return message_.empty() ? wharf::to_string(code_)
                            : wharf::to_string(code_) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value of type T or the Status explaining its absence.  The error
/// Status is never OK.
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    WHARF_EXPECT(!status_.is_ok(), "Expected<T> error constructor requires a non-OK status");
  }

  [[nodiscard]] bool has_value() const { return value_.has_value(); }
  [[nodiscard]] explicit operator bool() const { return has_value(); }

  /// The value; throws std::logic_error when absent (programming error —
  /// check has_value() first in non-throwing contexts).
  [[nodiscard]] const T& value() const& {
    if (!value_.has_value()) {
      throw std::logic_error("Expected<T>::value() on error: " + status_.to_string());
    }
    return *value_;
  }
  [[nodiscard]] T& value() & {
    if (!value_.has_value()) {
      throw std::logic_error("Expected<T>::value() on error: " + status_.to_string());
    }
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    if (!value_.has_value()) {
      throw std::logic_error("Expected<T>::value() on error: " + status_.to_string());
    }
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

  /// OK when a value is present, the error otherwise.
  [[nodiscard]] const Status& status() const { return status_; }

 private:
  std::optional<T> value_;
  Status status_;  ///< OK iff value_ engaged
};

/// Maps an in-flight exception (from the wharf::Error hierarchy or the
/// standard library) onto a Status.  Call from inside a catch block.
[[nodiscard]] inline Status status_from_current_exception() {
  try {
    throw;
  } catch (const ParseError& e) {
    return Status::parse_error(e.what());
  } catch (const InvalidArgument& e) {
    return Status::invalid_argument(e.what());
  } catch (const SolverError& e) {
    return Status::resource_exhausted(e.what());
  } catch (const AnalysisError& e) {
    return Status::resource_exhausted(e.what());
  } catch (const Error& e) {
    return Status::internal(e.what());
  } catch (const std::exception& e) {
    return Status::internal(e.what());
  } catch (...) {
    return Status::internal("unknown exception");
  }
}

/// Runs `fn` and converts any escaping exception to an error outcome:
/// Expected<R> for value-returning fn, Status for void fn.
template <typename F>
[[nodiscard]] auto capture(F&& fn) {
  using R = std::invoke_result_t<F>;
  if constexpr (std::is_void_v<R>) {
    try {
      std::forward<F>(fn)();
      return Status::ok();
    } catch (...) {
      return status_from_current_exception();
    }
  } else {
    try {
      return Expected<R>(std::forward<F>(fn)());
    } catch (...) {
      return Expected<R>(status_from_current_exception());
    }
  }
}

}  // namespace wharf

#endif  // WHARF_UTIL_STATUS_HPP
