#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <system_error>

namespace wharf::util {

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin])) != 0) ++begin;
  std::size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) ++i;
    std::size_t start = i;
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) == 0) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool parse_int64(std::string_view s, long long& out) {
  if (s.empty()) return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  // std::from_chars for double is available in libstdc++ 12.
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

std::string errno_message(int errno_value) {
  // std::error_code::message() allocates its own string — no shared
  // static buffer, unlike std::strerror.
  return std::error_code(errno_value, std::generic_category()).message();
}

}  // namespace wharf::util
