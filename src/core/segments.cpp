#include "core/segments.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace wharf {

namespace {

/// qualifies[i] == true iff task i of `a` has priority strictly above the
/// minimum priority of `b` (the membership test of Def. 3).
std::vector<bool> qualifying_tasks(const Chain& a, const Chain& b) {
  std::vector<bool> q(static_cast<std::size_t>(a.size()), false);
  const Priority min_b = b.min_priority();
  for (int i = 0; i < a.size(); ++i) {
    q[static_cast<std::size_t>(i)] = a.task(i).priority > min_b;
  }
  return q;
}

Segment make_segment(const Chain& a, std::vector<int> tasks, bool wraps) {
  Segment s;
  s.cost = cost_of(a, tasks);
  s.tasks = std::move(tasks);
  s.wraps = wraps;
  return s;
}

}  // namespace

Time cost_of(const Chain& a, const std::vector<int>& task_indices) {
  Time cost = 0;
  for (int i : task_indices) cost = sat_add(cost, a.task(i).wcet);
  return cost;
}

std::string format_task_list(const Chain& a, const std::vector<int>& task_indices) {
  std::string out = "(";
  for (std::size_t i = 0; i < task_indices.size(); ++i) {
    if (i != 0) out += ',';
    out += a.task(task_indices[i]).name;
  }
  out += ')';
  return out;
}

bool is_deferred(const Chain& a, const Chain& b) {
  const Priority min_b = b.min_priority();
  return std::any_of(a.tasks().begin(), a.tasks().end(),
                     [min_b](const Task& t) { return t.priority < min_b; });
}

std::vector<Segment> segments_wrt(const Chain& a, const Chain& b) {
  const std::vector<bool> qualifies = qualifying_tasks(a, b);
  const int n = a.size();

  const bool all = std::all_of(qualifies.begin(), qualifies.end(), [](bool v) { return v; });
  if (all) {
    // The whole chain is one segment; no wrap is needed (a wrap would
    // only duplicate tasks, and Def. 3 requires distinct tasks).
    std::vector<int> tasks(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) tasks[static_cast<std::size_t>(i)] = i;
    return {make_segment(a, std::move(tasks), false)};
  }

  // Collect maximal linear runs of qualifying tasks.
  std::vector<std::vector<int>> runs;
  int i = 0;
  while (i < n) {
    if (!qualifies[static_cast<std::size_t>(i)]) {
      ++i;
      continue;
    }
    std::vector<int> run;
    while (i < n && qualifies[static_cast<std::size_t>(i)]) run.push_back(i++);
    runs.push_back(std::move(run));
  }
  if (runs.empty()) return {};

  // Def. 3 reads identifiers modulo n_a: a run ending at the tail task
  // joins a run starting at the header task into one wrapping segment.
  const bool wrap = runs.size() >= 2 && runs.front().front() == 0 && runs.back().back() == n - 1;
  std::vector<Segment> out;
  if (wrap) {
    std::vector<int> tasks = runs.back();
    tasks.insert(tasks.end(), runs.front().begin(), runs.front().end());
    // The wrapped segment is listed where its first task lies (i.e. last).
    for (std::size_t r = 1; r + 1 < runs.size(); ++r) {
      out.push_back(make_segment(a, runs[r], false));
    }
    out.push_back(make_segment(a, std::move(tasks), true));
  } else {
    for (auto& run : runs) out.push_back(make_segment(a, std::move(run), false));
  }
  return out;
}

std::optional<Segment> critical_segment(const Chain& a, const Chain& b) {
  const std::vector<Segment> segs = segments_wrt(a, b);
  if (segs.empty()) return std::nullopt;
  const auto it = std::max_element(segs.begin(), segs.end(),
                                   [](const Segment& x, const Segment& y) { return x.cost < y.cost; });
  return *it;
}

std::vector<int> header_subchain(const Chain& a) {
  const int lowest = a.lowest_priority_index();
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(lowest));
  for (int i = 0; i < lowest; ++i) out.push_back(i);
  return out;
}

std::vector<int> header_segment_wrt(const Chain& a, const Chain& b) {
  WHARF_EXPECT(is_deferred(a, b), "header_segment_wrt requires '" << a.name()
                                                                  << "' to be deferred by '"
                                                                  << b.name() << "'");
  const Priority min_b = b.min_priority();
  std::vector<int> out;
  for (int i = 0; i < a.size(); ++i) {
    if (a.task(i).priority < min_b) break;
    out.push_back(i);
  }
  // The break above always triggers (a is deferred), so out.size() < n_a.
  return out;
}

std::vector<ActiveSegment> active_segments_wrt(const Chain& a, const Chain& b) {
  const Priority tail_b = b.tail().priority;
  std::vector<ActiveSegment> out;
  const std::vector<Segment> segs = segments_wrt(a, b);
  for (std::size_t si = 0; si < segs.size(); ++si) {
    const Segment& seg = segs[si];

    // Footnote 3: active segments never wrap; split a wrapping segment
    // into its two linear pieces first.
    std::vector<std::vector<int>> pieces;
    if (seg.wraps) {
      std::vector<int> first_piece;
      std::vector<int> second_piece;
      bool wrapped = false;
      for (std::size_t j = 0; j < seg.tasks.size(); ++j) {
        if (j > 0 && seg.tasks[j] < seg.tasks[j - 1]) wrapped = true;
        (wrapped ? second_piece : first_piece).push_back(seg.tasks[j]);
      }
      pieces.push_back(std::move(first_piece));
      pieces.push_back(std::move(second_piece));
    } else {
      pieces.push_back(seg.tasks);
    }

    for (const std::vector<int>& piece : pieces) {
      if (piece.empty()) continue;
      // Def. 8: within a piece, every task *after the first* must have
      // priority above b's tail task; greedily extend, else start anew.
      ActiveSegment cur;
      cur.segment_index = static_cast<int>(si);
      cur.tasks.push_back(piece.front());
      for (std::size_t j = 1; j < piece.size(); ++j) {
        if (a.task(piece[j]).priority > tail_b) {
          cur.tasks.push_back(piece[j]);
        } else {
          cur.cost = cost_of(a, cur.tasks);
          out.push_back(std::move(cur));
          cur = ActiveSegment{};
          cur.segment_index = static_cast<int>(si);
          cur.tasks.push_back(piece[j]);
        }
      }
      cur.cost = cost_of(a, cur.tasks);
      out.push_back(std::move(cur));
    }
  }
  return out;
}

}  // namespace wharf
