/// \file combinations.hpp
/// Overload combinations (paper Definition 9) and their enumeration.
///
/// A combination is a set of active segments of overload chains w.r.t.
/// the analyzed chain σ_b, restricted so that two active segments of the
/// same chain must belong to the same segment (otherwise they provably
/// cannot execute within one σ_b-busy-window, Lemma 1).  Unschedulable
/// combinations are those whose total cost exceeds the slack threshold of
/// Eq. (5); only *minimal* unschedulable combinations matter for the
/// packing optimum of Theorem 3 (any optimal packing can swap a
/// non-minimal combination for a minimal subset without losing value),
/// which keeps the ILP small.

#ifndef WHARF_CORE_COMBINATIONS_HPP
#define WHARF_CORE_COMBINATIONS_HPP

#include <string>
#include <vector>

#include "core/segments.hpp"
#include "core/system.hpp"

namespace wharf {

/// Active segments of one overload chain w.r.t. the analyzed chain.
struct OverloadActiveSegments {
  int chain = -1;                      ///< overload chain index in the system
  std::vector<ActiveSegment> active;   ///< w.r.t. the analyzed chain, in order
};

/// Active-segment structure of all overload chains w.r.t. one target.
struct OverloadStructure {
  int target = -1;
  /// One entry per overload chain, in System::overload_indices() order.
  std::vector<OverloadActiveSegments> per_chain;

  /// Total number of active segments across all overload chains.
  [[nodiscard]] int total_active() const;
};

/// Identifies one active segment inside an OverloadStructure.
struct ActiveSegmentId {
  int chain_pos = -1;     ///< index into OverloadStructure::per_chain
  int active_index = -1;  ///< index into per_chain[chain_pos].active

  friend bool operator==(const ActiveSegmentId&, const ActiveSegmentId&) = default;
};

/// A combination c̄ (Def. 9): a set of active segments, valid w.r.t. the
/// same-segment rule.
struct Combination {
  std::vector<ActiveSegmentId> segments;
  /// Σ_{s ∈ c̄} C_s — the only quantity the criterion of Eq. (5) needs.
  Time cost = 0;
};

/// Computes the active segments of every overload chain w.r.t. `target`.
[[nodiscard]] OverloadStructure overload_structure(const System& system, int target);

/// Enumerates every valid non-empty combination (Def. 9).  Throws
/// wharf::AnalysisError when more than `max_count` combinations exist or
/// a single segment carries more than 20 active segments (2^20 subsets).
[[nodiscard]] std::vector<Combination> enumerate_combinations(const System& system,
                                                              const OverloadStructure& structure,
                                                              std::size_t max_count);

/// Unschedulable combinations w.r.t. a non-negative slack threshold
/// (Eq. 5: unschedulable iff cost > slack).  With `minimal_only`, keeps
/// only minimal unschedulable combinations: cost > slack and
/// cost - min_member_cost <= slack.
[[nodiscard]] std::vector<Combination> unschedulable_combinations(
    const System& system, const OverloadStructure& structure, Time slack, std::size_t max_count,
    bool minimal_only);

/// Pretty "{(tau1,tau2),(tau5)}" rendering of a combination.
[[nodiscard]] std::string format_combination(const System& system,
                                             const OverloadStructure& structure,
                                             const Combination& combination);

}  // namespace wharf

#endif  // WHARF_CORE_COMBINATIONS_HPP
