/// \file busy_window_reference.cpp
/// The pre-flattening busy-window implementation, preserved verbatim
/// from before the data-oriented rewrite of busy_window.cpp: virtual
/// eta/delta dispatch per call, cold-started Kleene iteration per q.
/// Serves as the bit-identity oracle — bench/core_solver.cpp and
/// tests/arrival_table_test.cpp compare the flat kernel against these
/// functions field by field, and CI gates on the comparison.

#include <algorithm>

#include "core/busy_window.hpp"
#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf::reference {

namespace {

/// Interference contributed by one other chain σ_a over a window of
/// length `window`, per Eq. (1)/(3)/(4):
///  * arbitrarily interfering (or `naive`):  η⁺_a(window) · C_a;
///  * deferred, asynchronous:  η⁺_a(window) · C_header_{a,b} + Σ_s C_s;
///  * deferred, synchronous:   C_{s_crit_{a,b}}.
Time chain_interference(const System& system, const ChainInterference& info, Time window,
                        bool naive) {
  const Chain& a = system.chain(info.chain);
  if (naive || !info.deferred) {
    const Count eta = a.arrival().eta_plus(window);
    if (eta == kCountInfinity) return kTimeInfinity;
    return sat_mul(eta, a.total_wcet());
  }
  if (a.is_asynchronous()) {
    const Count eta = a.arrival().eta_plus(window);
    if (eta == kCountInfinity) return kTimeInfinity;
    return sat_add(sat_mul(eta, info.header_segment_cost), info.segments_total_cost);
  }
  return info.critical ? info.critical->cost : 0;
}

/// Self-interference of an asynchronous analyzed chain (2nd line of
/// Eq. 1): activations beyond the q under analysis may run up to the
/// chain's own header subchain before stalling at its lowest-priority
/// task.
Time self_interference(const Chain& b, const InterferenceContext& ctx, Time window, Count q) {
  if (!b.is_asynchronous() || ctx.self_header_cost == 0) return 0;
  const Count eta = b.arrival().eta_plus(window);
  if (eta == kCountInfinity) return kTimeInfinity;
  const Count extra = std::max<Count>(0, eta - q);
  return sat_mul(extra, ctx.self_header_cost);
}

bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

/// Full right-hand side of Eq. (1) evaluated at busy-time guess `window`.
Time busy_rhs(const System& system, const InterferenceContext& ctx, Count q, Time window,
              const AnalysisOptions& options, const std::vector<int>& exclude) {
  const Chain& b = system.chain(ctx.target);
  Time total = sat_mul(q, b.total_wcet());
  total = sat_add(total, self_interference(b, ctx, window, q));
  for (const ChainInterference& info : ctx.others) {
    if (contains(exclude, info.chain)) continue;
    total = sat_add(total, chain_interference(system, info, window, options.naive_arbitrary));
  }
  return total;
}

}  // namespace

std::optional<Time> busy_time(const System& system, const InterferenceContext& ctx, Count q,
                              const AnalysisOptions& options, const std::vector<int>& exclude) {
  WHARF_EXPECT(q >= 1, "busy_time requires q >= 1, got " << q);
  // Kleene iteration from the constant part: Eq. (1) is monotone in B, so
  // this converges to the least fixed point whenever one exists.
  Time current = sat_mul(q, system.chain(ctx.target).total_wcet());
  for (int iter = 0; iter < options.max_fixed_point_iterations; ++iter) {
    const Time next = busy_rhs(system, ctx, q, current, options, exclude);
    if (next >= options.divergence_guard || is_infinite(next)) return std::nullopt;
    if (next == current) return current;
    WHARF_ASSERT(next > current);  // monotone iteration
    current = next;
  }
  return std::nullopt;  // iteration cap: treat as divergent
}

LatencyResult latency_analysis(const System& system, int target, const AnalysisOptions& options,
                               const std::vector<int>& exclude) {
  const InterferenceContext ctx = make_interference_context(system, target);
  const Chain& b = system.chain(target);

  LatencyResult result;
  result.wcl = 0;
  result.worst_q = 0;

  Count misses = 0;
  for (Count q = 1; q <= options.max_busy_windows; ++q) {
    const std::optional<Time> bq = reference::busy_time(system, ctx, q, options, exclude);
    if (!bq.has_value()) {
      result.bounded = false;
      result.reason = util::cat("busy-time fixed point diverged at q=", q,
                                " (processor overloaded or guard exceeded)");
      return result;
    }
    result.busy_times.push_back(*bq);

    const Time latency = *bq - b.arrival().delta_minus(q);
    if (latency > result.wcl || result.worst_q == 0) {
      result.wcl = latency;
      result.worst_q = q;
    }
    if (b.deadline().has_value() && latency > *b.deadline()) ++misses;

    if (*bq <= b.arrival().delta_minus(q + 1)) {
      result.K = q;
      result.bounded = true;
      if (b.deadline().has_value()) {
        result.misses_per_window = misses;
        result.schedulable = result.wcl <= *b.deadline();
      }
      return result;
    }
  }
  result.bounded = false;
  result.reason = util::cat("no maximal busy window within ", options.max_busy_windows,
                            " activations (K_b search cap)");
  return result;
}

}  // namespace wharf::reference
