/// \file busy_window.hpp
/// Worst-case latency analysis of task chains (paper Section IV).
///
/// Implements the q-event busy time B_b(q) of Theorem 1 (Eq. 1) as a
/// least fixed point, the busy-window bound K_b and worst-case latency
/// WCL_b of Theorem 2, the per-window deadline-miss count N_b of
/// Lemma 3, and the overload-free "typical" bound L_b(q) of Eq. (4)
/// together with the slack threshold that powers the schedulability
/// criterion of Eq. (5).

#ifndef WHARF_CORE_BUSY_WINDOW_HPP
#define WHARF_CORE_BUSY_WINDOW_HPP

#include <optional>
#include <string>
#include <vector>

#include "core/interference.hpp"
#include "core/system.hpp"

namespace wharf {

/// Knobs shared by latency and TWCA analyses.
struct AnalysisOptions {
  /// Cap on the K_b search (number of busy-window positions explored).
  Count max_busy_windows = 1'000'000;
  /// Cap on Kleene iterations per fixed point.
  int max_fixed_point_iterations = 1'000'000;
  /// Busy times above this guard are treated as divergent (unbounded).
  Time divergence_guard = Time{1} << 60;
  /// Ablation switch: ignore Definitions 2–5 and treat every interfering
  /// chain as arbitrarily interfering (the coarse baseline the paper
  /// improves upon).  Used by bench_ablation_latency.
  bool naive_arbitrary = false;
};

/// Result of the latency analysis of one chain.
struct LatencyResult {
  /// False when the busy window diverges (e.g. utilization >= 1) or a cap
  /// was hit; all other fields are then meaningless except `reason`.
  bool bounded = false;
  /// Human-readable explanation when !bounded.
  std::string reason;
  /// K_b: number of activations fitting one maximal busy window (Thm 2).
  Count K = 0;
  /// B_b(1..K); busy_times[q-1] is B_b(q).
  std::vector<Time> busy_times;
  /// Worst-case latency WCL_b = max_q B_b(q) - delta_minus(q).
  Time wcl = 0;
  /// The q attaining the WCL.
  Count worst_q = 0;
  /// N_b (Lemma 3): #{q | B_b(q) - delta_minus(q) > D_b}.  Present only
  /// when the chain has a deadline.
  std::optional<Count> misses_per_window;
  /// True iff bounded and the chain has a deadline and wcl <= deadline.
  bool schedulable = false;
};

/// Theorem 1 / Eq. (1): least fixed point bounding the q-event busy time
/// of chain `ctx.target`.  Chains whose index appears in `exclude` are
/// ignored entirely (used to abstract overload chains away, as in the
/// paper's "second analysis").  Returns std::nullopt on divergence.
[[nodiscard]] std::optional<Time> busy_time(const System& system, const InterferenceContext& ctx,
                                            Count q, const AnalysisOptions& options,
                                            const std::vector<int>& exclude = {});

/// One contribution to a busy time (for reports/debugging).  Stores the
/// structured facts; the human-readable label is rendered on demand via
/// label(), so the analysis never builds diagnostic strings it may not
/// need (the old eager util::cat labels allocated per term).
struct BusyTimeTerm {
  /// Which Eq. (1) term this is (selects the label wording).
  enum class Kind {
    kDemand,         ///< q x C_b: the analyzed chain's own demand
    kSelfHeader,     ///< async self header pile-up (2nd line of Eq. 1)
    kArbitrary,      ///< arbitrarily interfering chain: eta x C_a
    kDeferredAsync,  ///< deferred async: eta x C_header + one per segment
    kDeferredSync,   ///< deferred sync: critical segment only
  };
  Kind kind = Kind::kDemand;  ///< term kind
  int chain = -1;             ///< contributing chain (the target for kDemand/kSelfHeader)
  Count q = 0;                ///< activation count under analysis (kDemand label)
  Time amount = 0;            ///< the term's value at the evaluated window
  /// Renders the label, e.g. "2 x C_gamma (demand)" or
  /// "alpha — deferred sync (critical segment)".
  [[nodiscard]] std::string label(const System& system) const;
};

/// Term-by-term itemization of Eq. (1) evaluated at the busy time `B`
/// (typically the fixed point returned by busy_time()); the amounts sum
/// to the right-hand side at `B` — i.e. exactly `B` when `B` is the
/// fixed point.
[[nodiscard]] std::vector<BusyTimeTerm> busy_time_breakdown(const System& system,
                                                            const InterferenceContext& ctx,
                                                            Count q, Time busy,
                                                            const AnalysisOptions& options = {},
                                                            const std::vector<int>& exclude = {});

/// Theorem 2 + Lemma 3: full latency analysis of chain `target`.
[[nodiscard]] LatencyResult latency_analysis(const System& system, int target,
                                             const AnalysisOptions& options = {},
                                             const std::vector<int>& exclude = {});

/// As above, but reusing a prebuilt interference context of the target
/// (e.g. the engine's cached stage-1 artifact) instead of rebuilding it.
[[nodiscard]] LatencyResult latency_analysis(const System& system,
                                             const InterferenceContext& ctx,
                                             const AnalysisOptions& options = {},
                                             const std::vector<int>& exclude = {});

/// Eq. (4): the typical (overload-free) load bound L_b(q), evaluated over
/// the window delta_minus_b(q) + D_b — no fixed point required.  Overload
/// chains are excluded per the paper; requires the chain to have a
/// deadline.
[[nodiscard]] Time typical_bound(const System& system, const InterferenceContext& ctx, Count q,
                                 const AnalysisOptions& options);

/// Slack threshold of the schedulability criterion (Eq. 5):
///   theta_b = min_{q in [1,K]} (delta_minus_b(q) + D_b - L_b(q)).
/// A combination c is unschedulable iff cost(c) > theta_b.  Negative
/// slack means the chain can miss deadlines even without any overload.
[[nodiscard]] Time typical_slack(const System& system, const InterferenceContext& ctx, Count K,
                                 const AnalysisOptions& options);

/// Eq. (3): busy time of the target chain where every overload chain's
/// contribution is replaced by the fixed total cost of a combination
/// (the Boolean-selected Σ_s C_s r_s term).  All overload chains are
/// excluded from the interference walk; `combination_cost` is added as a
/// constant.  Returns std::nullopt on divergence.
[[nodiscard]] std::optional<Time> busy_time_with_combination(const System& system,
                                                             const InterferenceContext& ctx,
                                                             Count q, Time combination_cost,
                                                             const AnalysisOptions& options);

/// Exact slack under Eq. (3): the largest combination cost theta such
/// that for all q in [1, K], B^c(q) - delta_minus(q) <= D — found by
/// binary search (Eq. (3) is monotone in the cost).  Always >= the Eq. 5
/// slack; combinations with cost <= theta are schedulable under the
/// exact per-q fixed-point test.  Returns -1 when even cost 0 misses.
[[nodiscard]] Time exact_combination_slack(const System& system, const InterferenceContext& ctx,
                                           Count K, Time max_cost,
                                           const AnalysisOptions& options);

/// The pre-flattening (PR <= 6) busy-window implementation, preserved
/// verbatim as the bit-identity oracle for the data-oriented kernel:
/// bench/core_solver.cpp and the property tests gate the flat path
/// against these on every run.  Virtual-dispatch per eta/delta call —
/// correct but slow; not for production use.
namespace reference {

/// Pre-flattening Theorem 1 fixed point (see the namespace comment).
[[nodiscard]] std::optional<Time> busy_time(const System& system, const InterferenceContext& ctx,
                                            Count q, const AnalysisOptions& options,
                                            const std::vector<int>& exclude = {});

/// Pre-flattening Theorem 2 + Lemma 3 analysis (see the namespace comment).
[[nodiscard]] LatencyResult latency_analysis(const System& system, int target,
                                             const AnalysisOptions& options = {},
                                             const std::vector<int>& exclude = {});

}  // namespace reference

}  // namespace wharf

#endif  // WHARF_CORE_BUSY_WINDOW_HPP
