/// \file twca.hpp
/// Typical Worst-Case Analysis for task chains (paper Section V) — the
/// core contribution: deadline miss models dmm_b(k) via the packing ILP
/// of Theorem 3.

#ifndef WHARF_CORE_TWCA_HPP
#define WHARF_CORE_TWCA_HPP

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/busy_window.hpp"
#include "core/combinations.hpp"
#include "core/system.hpp"
#include "ilp/packing.hpp"

namespace wharf {

/// Which schedulability test classifies combinations (Section V-C).
enum class SchedulabilityCriterion {
  /// The paper's efficient sufficient condition (Eq. 5): a combination is
  /// unschedulable iff its cost exceeds the typical slack theta_b.
  kSufficientEq5,
  /// Exact per-q fixed-point evaluation of Eq. (3); never classifies more
  /// combinations as unschedulable than Eq. 5, so the resulting dmm is at
  /// most the Eq.-5 dmm (ablation: bench_ablation_ilp).
  kExactEq3,
};

/// Knobs of the DMM computation.
struct TwcaOptions {
  AnalysisOptions analysis;
  /// Combination classification test (Section V-C).
  SchedulabilityCriterion criterion = SchedulabilityCriterion::kSufficientEq5;
  /// Cap on combination enumeration (Def. 9 can be exponential).
  std::size_t max_combinations = 1'000'000;
  /// Keep only minimal unschedulable combinations (provably optimum-
  /// preserving; see combinations.hpp).  Disable for ablation studies.
  bool minimal_only = true;
  /// Additionally cap dmm(k) at k (trivially sound; the raw ILP bound can
  /// exceed k for tiny k).
  bool cap_at_k = true;
  /// Solve the packing with the exhaustive DFS solver instead of the
  /// branch-and-bound ILP (cross-check / ablation path).
  bool use_dfs_packer = false;
};

/// Classification of a DMM query outcome.
enum class DmmStatus {
  /// WCL_b <= D_b: the chain never misses; dmm == 0 for every k.
  kAlwaysMeets,
  /// A non-trivial bound was computed via Theorem 3.
  kBounded,
  /// TWCA cannot bound the misses (diverging busy window, negative
  /// typical slack, unbounded delta_plus, ...): dmm(k) = k.
  kNoGuarantee,
};

/// Human-readable status name.
[[nodiscard]] std::string to_string(DmmStatus status);

/// Result of one dmm_b(k) query, with the intermediate quantities the
/// paper reports (useful for tables and debugging).
struct DmmResult {
  Count k = 0;
  /// The deadline miss model value: max misses in k consecutive runs.
  Count dmm = 0;
  DmmStatus status = DmmStatus::kNoGuarantee;
  /// Explanation when status == kNoGuarantee.
  std::string reason;

  // Diagnostics (meaningful for kBounded / kAlwaysMeets):
  Time wcl = 0;           ///< WCL_b (Theorem 2)
  Count K = 0;            ///< K_b (Theorem 2)
  Count n_b = 0;          ///< N_b (Lemma 3)
  Time slack = 0;         ///< theta_b (Eq. 5 threshold)
  std::vector<Count> omegas;  ///< Ω^a_b per overload chain (Lemma 4)
  std::size_t combination_count = 0;     ///< combinations enumerated
  std::size_t unschedulable_count = 0;   ///< |U| handed to the ILP
  Count packing_optimum = 0;             ///< ILP optimum (Σ x_c̄)
  long long solver_nodes = 0;            ///< B&B / DFS nodes
};

// ---------------------------------------------------------------------
// Stage boundaries (artifact pipeline)
// ---------------------------------------------------------------------
//
// The DMM computation is staged: interference context -> busy windows
// (LatencyResult) -> k-independent overload artifacts (TargetArtifacts)
// -> dmm(k) with a combination-packing solve.  The free functions below
// expose each boundary so callers that cache artifacts at a finer grain
// than "one analyzer per system" (wharf::Engine's ArtifactStore) can
// inject upstream results and intercept the packing solve.  TwcaAnalyzer
// remains the convenient per-system façade over the same functions.

/// Injectable solver for the Theorem-3 packing step.  The default (an
/// empty function) picks solve_packing_ilp / solve_packing_dfs per
/// TwcaOptions::use_dfs_packer; the Engine injects a solver that caches
/// solutions by problem content and splits independent subproblems
/// across its worker pool.
using PackingSolver = std::function<ilp::PackingSolution(const ilp::PackingProblem&)>;

/// The k-independent artifacts of Theorem 3 for one target chain: the
/// overload structure (Def. 8), the slack threshold (Eq. 5 or the exact
/// Eq. 3 variant), the unschedulable combinations (Def. 9), and the
/// short-circuit classification (always-meets / no-guarantee).
struct TargetArtifacts {
  Time slack = 0;  ///< theta_b; valid when no short-circuit applies
  OverloadStructure structure;
  std::vector<Combination> unschedulable;
  /// When set, every dmm query returns kNoGuarantee with this reason.
  std::optional<std::string> no_guarantee_reason;
  /// When true, the chain never misses (WCL <= D): dmm == 0.
  bool always_meets = false;
};

/// Builds the k-independent overload artifacts of `target` from its
/// interference context and full latency result.  The target must have a
/// deadline.
[[nodiscard]] TargetArtifacts build_target_artifacts(const System& system, int target,
                                                     const InterferenceContext& context,
                                                     const LatencyResult& latency,
                                                     const TwcaOptions& options);

/// The k-dependent step of Theorem 3: Lemma-4 capacities, the packing
/// problem over `artifacts.unschedulable`, and the final dmm(k) bound.
/// `latency` and `artifacts` must describe `target` (the outputs of the
/// upstream stages); `solver` intercepts the packing solve (empty =
/// built-in exact solvers).
[[nodiscard]] DmmResult dmm_from_artifacts(const System& system, int target,
                                           const LatencyResult& latency,
                                           const TargetArtifacts& artifacts, Count k,
                                           const TwcaOptions& options,
                                           const PackingSolver& solver = {});

/// Façade bundling latency analysis and DMM computation with caching of
/// the per-chain artefacts that do not depend on k (interference context,
/// K/WCL/N_b, slack, active segments, unschedulable combinations).
class TwcaAnalyzer {
 public:
  explicit TwcaAnalyzer(System system, TwcaOptions options = {});
  ~TwcaAnalyzer();

  TwcaAnalyzer(TwcaAnalyzer&&) noexcept;
  TwcaAnalyzer& operator=(TwcaAnalyzer&&) noexcept;

  [[nodiscard]] const System& system() const;
  [[nodiscard]] const TwcaOptions& options() const;

  /// Full latency analysis (Theorem 2), cached per chain.
  [[nodiscard]] const LatencyResult& latency(int chain) const;

  /// Latency analysis with all overload chains abstracted away (the
  /// paper's "second analysis" in Experiment 1), cached per chain.
  [[nodiscard]] const LatencyResult& latency_without_overload(int chain) const;

  /// dmm_chain(k) per Theorem 3.  The chain must have a deadline and must
  /// not itself be an overload chain.
  [[nodiscard]] DmmResult dmm(int chain, Count k) const;

  /// Batch helper: dmm for several k values (shares all per-chain work).
  [[nodiscard]] std::vector<DmmResult> dmm_curve(int chain, const std::vector<Count>& ks) const;

  /// Weakly-hard (m,k) verification: true iff dmm(k) <= m.
  [[nodiscard]] bool satisfies_weakly_hard(int chain, Count m, Count k) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wharf

#endif  // WHARF_CORE_TWCA_HPP
