#include "core/arrival.hpp"

#include <algorithm>
#include <sstream>

#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf {

namespace {

class PeriodicModel final : public ArrivalModel {
 public:
  explicit PeriodicModel(Time period) : period_(period) {
    WHARF_EXPECT(period >= 1, "period must be >= 1, got " << period);
  }

  Count eta_plus(Time window) const override {
    if (window <= 0) return 0;
    if (is_infinite(window)) return kCountInfinity;
    return ceil_div(window, period_);
  }

  Count eta_minus(Time window) const override {
    if (window <= 0) return 0;
    if (is_infinite(window)) return kCountInfinity;
    return floor_div(window, period_);
  }

  Time delta_minus(Count q) const override {
    if (q <= 1) return 0;
    return sat_mul(q - 1, period_);
  }

  Time delta_plus(Count q) const override {
    if (q <= 1) return 0;
    return sat_mul(q - 1, period_);
  }

  double rate_upper() const override { return 1.0 / static_cast<double>(period_); }

  std::optional<ArrivalTailSpec> tail_spec() const override {
    return ArrivalTailSpec{1, 1, period_};
  }

  std::string describe() const override { return util::cat("periodic(", period_, ")"); }

 private:
  Time period_;
};

class PeriodicJitterModel final : public ArrivalModel {
 public:
  PeriodicJitterModel(Time period, Time jitter, Time min_distance)
      : period_(period), jitter_(jitter), min_distance_(min_distance) {
    WHARF_EXPECT(period >= 1, "period must be >= 1, got " << period);
    WHARF_EXPECT(jitter >= 0, "jitter must be >= 0, got " << jitter);
    WHARF_EXPECT(min_distance >= 1, "min_distance must be >= 1, got " << min_distance);
    WHARF_EXPECT(min_distance <= period,
                 "min_distance (" << min_distance << ") must not exceed period (" << period
                                  << ")");
  }

  Count eta_plus(Time window) const override {
    if (window <= 0) return 0;
    if (is_infinite(window)) return kCountInfinity;
    const Count by_period = ceil_div(sat_add(window, jitter_), period_);
    const Count by_distance = ceil_div(window, min_distance_);
    return std::min(by_period, by_distance);
  }

  Count eta_minus(Time window) const override {
    if (window <= jitter_) return 0;
    if (is_infinite(window)) return kCountInfinity;
    return floor_div(window - jitter_, period_);
  }

  Time delta_minus(Count q) const override {
    if (q <= 1) return 0;
    const Time by_period = sat_mul(q - 1, period_) <= jitter_
                               ? 0
                               : sat_mul(q - 1, period_) - jitter_;
    const Time by_distance = sat_mul(q - 1, min_distance_);
    return std::max(by_period, by_distance);
  }

  Time delta_plus(Count q) const override {
    if (q <= 1) return 0;
    return sat_add(sat_mul(q - 1, period_), jitter_);
  }

  double rate_upper() const override { return 1.0 / static_cast<double>(period_); }

  std::optional<ArrivalTailSpec> tail_spec() const override {
    // With period == min_distance the distance term (q-1)*min_distance
    // dominates everywhere, so the curve is arithmetic from q = 1.
    // Otherwise the period term (q-1)*period - jitter takes over once
    // (q-1)*(period - min_distance) >= jitter.
    if (period_ == min_distance_) return ArrivalTailSpec{1, 1, period_};
    return ArrivalTailSpec{1 + ceil_div(jitter_, period_ - min_distance_), 1, period_};
  }

  std::string describe() const override {
    return util::cat("periodic_jitter(", period_, ",", jitter_, ",", min_distance_, ")");
  }

 private:
  Time period_;
  Time jitter_;
  Time min_distance_;
};

class SporadicModel final : public ArrivalModel {
 public:
  explicit SporadicModel(Time min_distance) : min_distance_(min_distance) {
    WHARF_EXPECT(min_distance >= 1, "min_distance must be >= 1, got " << min_distance);
  }

  Count eta_plus(Time window) const override {
    if (window <= 0) return 0;
    if (is_infinite(window)) return kCountInfinity;
    return ceil_div(window, min_distance_);
  }

  Count eta_minus(Time) const override { return 0; }

  Time delta_minus(Count q) const override {
    if (q <= 1) return 0;
    return sat_mul(q - 1, min_distance_);
  }

  Time delta_plus(Count q) const override { return q <= 1 ? 0 : kTimeInfinity; }

  double rate_upper() const override { return 1.0 / static_cast<double>(min_distance_); }

  std::optional<ArrivalTailSpec> tail_spec() const override {
    return ArrivalTailSpec{1, 1, min_distance_};
  }

  std::string describe() const override { return util::cat("sporadic(", min_distance_, ")"); }

 private:
  Time min_distance_;
};

class DeltaCurveModel final : public ArrivalModel {
 public:
  DeltaCurveModel(std::vector<Time> prefix, Time tail_period)
      : prefix_(std::move(prefix)), tail_period_(tail_period) {
    WHARF_EXPECT(!prefix_.empty(), "delta_curve prefix must not be empty");
    WHARF_EXPECT(tail_period_ >= 1, "tail period must be >= 1, got " << tail_period_);
    Time prev = 0;
    for (Time d : prefix_) {
      WHARF_EXPECT(d >= prev, "delta_curve prefix must be non-decreasing");
      prev = d;
    }
  }

  DeltaCurveModel(std::vector<Time> prefix, Time tail_period, std::vector<Time> plus_prefix,
                  Time plus_tail)
      : DeltaCurveModel(std::move(prefix), tail_period) {
    WHARF_EXPECT(!plus_prefix.empty(), "delta_plus prefix must not be empty");
    WHARF_EXPECT(plus_tail >= tail_period_,
                 "delta_plus tail slope (" << plus_tail << ") must be >= delta_minus tail slope ("
                                           << tail_period_ << ")");
    Time prev = 0;
    for (std::size_t i = 0; i < plus_prefix.size(); ++i) {
      WHARF_EXPECT(plus_prefix[i] >= prev, "delta_plus prefix must be non-decreasing");
      prev = plus_prefix[i];
    }
    plus_prefix_ = std::move(plus_prefix);
    plus_tail_ = plus_tail;
    // Pointwise dominance delta_plus(q) >= delta_minus(q) over a generous
    // range (both curves are eventually linear).
    const Count check = static_cast<Count>(prefix_.size() + plus_prefix_.size()) + 4;
    for (Count q = 1; q <= check; ++q) {
      WHARF_EXPECT(delta_plus(q) >= delta_minus(q),
                   "delta_plus(" << q << ") < delta_minus(" << q << ")");
    }
  }

  Count eta_plus(Time window) const override {
    if (window <= 0) return 0;
    if (is_infinite(window)) return kCountInfinity;
    // eta_plus(dt) = max{ q | delta_minus(q) < dt }; delta_minus(1) = 0 < dt.
    // The prefix is non-decreasing, so the count of entries < window is a
    // binary search (prefix_[i] holds delta_minus(i + 2)).
    const auto it = std::lower_bound(prefix_.begin(), prefix_.end(), window);
    if (it != prefix_.end()) return static_cast<Count>(it - prefix_.begin()) + 1;
    // Beyond the prefix: delta_minus(q) = back + (q - n - 1) * tail, where
    // n = prefix length + 1 is the largest q covered by the prefix.
    const Count n = static_cast<Count>(prefix_.size()) + 1;
    const Time back = prefix_.back();
    // Largest q with back + (q - n) * tail < window:
    const Time room = window - back;  // > 0 here
    const Count extra = ceil_div(room, tail_period_) - 1;
    return n + std::max<Count>(extra, 0);
  }

  Count eta_minus(Time window) const override {
    if (plus_prefix_.empty() || window <= 0) return 0;
    if (is_infinite(window)) return kCountInfinity;
    // Largest q >= 0 with delta_plus(q + 1) <= window: any window of that
    // length must contain at least q activations.  The count of prefix
    // entries <= window is again a binary search.
    const auto it = std::upper_bound(plus_prefix_.begin(), plus_prefix_.end(), window);
    if (it != plus_prefix_.end()) return static_cast<Count>(it - plus_prefix_.begin());
    const Count n = static_cast<Count>(plus_prefix_.size()) + 1;
    const Count extra = floor_div(window - plus_prefix_.back(), plus_tail_);
    return n + extra - 1;
  }

  Time delta_minus(Count q) const override {
    if (q <= 1) return 0;
    const std::size_t idx = static_cast<std::size_t>(q - 2);
    if (idx < prefix_.size()) return prefix_[idx];
    const Count n = static_cast<Count>(prefix_.size()) + 1;
    return sat_add(prefix_.back(), sat_mul(q - n, tail_period_));
  }

  Time delta_plus(Count q) const override {
    if (q <= 1) return 0;
    if (plus_prefix_.empty()) return kTimeInfinity;
    const std::size_t idx = static_cast<std::size_t>(q - 2);
    if (idx < plus_prefix_.size()) return plus_prefix_[idx];
    const Count n = static_cast<Count>(plus_prefix_.size()) + 1;
    return sat_add(plus_prefix_.back(), sat_mul(q - n, plus_tail_));
  }

  double rate_upper() const override { return 1.0 / static_cast<double>(tail_period_); }

  std::optional<ArrivalTailSpec> tail_spec() const override {
    // The prefix covers q in [2, n] with n = prefix length + 1; from q = n
    // on, every step adds the tail slope.
    return ArrivalTailSpec{static_cast<Count>(prefix_.size()) + 1, 1, tail_period_};
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "curve(";
    for (std::size_t i = 0; i < prefix_.size(); ++i) {
      if (i != 0) os << ',';
      os << prefix_[i];
    }
    os << ';' << tail_period_;
    if (!plus_prefix_.empty()) {
      os << '|';
      for (std::size_t i = 0; i < plus_prefix_.size(); ++i) {
        if (i != 0) os << ',';
        os << plus_prefix_[i];
      }
      os << ';' << plus_tail_;
    }
    os << ')';
    return os.str();
  }

 private:
  std::vector<Time> prefix_;  // delta_minus(2), delta_minus(3), ...
  Time tail_period_;
  std::vector<Time> plus_prefix_;  // delta_plus(2), ... (empty: unbounded)
  Time plus_tail_ = 0;
};

class SporadicBurstModel final : public ArrivalModel {
 public:
  SporadicBurstModel(Time outer_period, Count burst_size, Time inner_distance)
      : period_(outer_period), burst_(burst_size), inner_(inner_distance) {
    WHARF_EXPECT(period_ >= 1, "outer period must be >= 1, got " << period_);
    WHARF_EXPECT(burst_ >= 1, "burst size must be >= 1, got " << burst_);
    WHARF_EXPECT(inner_ >= 1, "inner distance must be >= 1, got " << inner_);
    WHARF_EXPECT(period_ >= sat_mul(burst_ - 1, inner_),
                 "outer period " << period_ << " too short for " << burst_
                                 << " events spaced " << inner_);
  }

  Count eta_plus(Time window) const override {
    if (window <= 0) return 0;
    if (is_infinite(window)) return kCountInfinity;
    // max{q | delta_minus(q) < window}: full bursts plus a partial one.
    const Count full_periods = floor_div(window - 1, period_);
    const Time rest = window - sat_mul(full_periods, period_);  // >= 1
    const Count partial = std::min<Count>(burst_, ceil_div(rest, inner_));
    return full_periods * burst_ + partial;
  }

  Count eta_minus(Time) const override { return 0; }

  Time delta_minus(Count q) const override {
    if (q <= 1) return 0;
    const Count a = (q - 1) / burst_;
    const Count r = (q - 1) % burst_;
    return sat_add(sat_mul(a, period_), sat_mul(r, inner_));
  }

  Time delta_plus(Count q) const override { return q <= 1 ? 0 : kTimeInfinity; }

  double rate_upper() const override {
    return static_cast<double>(burst_) / static_cast<double>(period_);
  }

  std::optional<ArrivalTailSpec> tail_spec() const override {
    // Shifting by one whole burst adds exactly one outer period.
    return ArrivalTailSpec{1, burst_, period_};
  }

  std::string describe() const override {
    return util::cat("burst(", period_, ",", burst_, ",", inner_, ")");
  }

 private:
  Time period_;
  Count burst_;
  Time inner_;
};

/// Splits "name(args)" into name and the raw argument string.
bool split_call(const std::string& spec, std::string& name, std::string& args) {
  const auto open = spec.find('(');
  if (open == std::string::npos || spec.back() != ')') return false;
  name = std::string(util::trim(spec.substr(0, open)));
  args = spec.substr(open + 1, spec.size() - open - 2);
  return !name.empty();
}

Time parse_time_or_throw(const std::string& field, const std::string& spec) {
  long long v = 0;
  WHARF_EXPECT(util::parse_int64(util::trim(field), v),
               "cannot parse integer '" << field << "' in arrival spec '" << spec << "'");
  return static_cast<Time>(v);
}

}  // namespace

ArrivalModelPtr periodic(Time period) { return std::make_shared<PeriodicModel>(period); }

ArrivalModelPtr periodic_jitter(Time period, Time jitter, Time min_distance) {
  return std::make_shared<PeriodicJitterModel>(period, jitter, min_distance);
}

ArrivalModelPtr sporadic(Time min_distance) { return std::make_shared<SporadicModel>(min_distance); }

ArrivalModelPtr delta_curve(std::vector<Time> prefix, Time tail_period) {
  return std::make_shared<DeltaCurveModel>(std::move(prefix), tail_period);
}

ArrivalModelPtr delta_curve_with_plus(std::vector<Time> prefix, Time tail_period,
                                      std::vector<Time> plus_prefix, Time plus_tail) {
  return std::make_shared<DeltaCurveModel>(std::move(prefix), tail_period,
                                           std::move(plus_prefix), plus_tail);
}

ArrivalModelPtr sporadic_burst(Time outer_period, Count burst_size, Time inner_distance) {
  return std::make_shared<SporadicBurstModel>(outer_period, burst_size, inner_distance);
}

ArrivalModelPtr parse_arrival(const std::string& spec) {
  std::string name;
  std::string args;
  WHARF_EXPECT(split_call(std::string(util::trim(spec)), name, args),
               "arrival spec must look like name(args), got '" << spec << "'");

  if (name == "periodic") {
    return periodic(parse_time_or_throw(args, spec));
  }
  if (name == "periodic_jitter") {
    const auto fields = util::split(args, ',');
    WHARF_EXPECT(fields.size() == 2 || fields.size() == 3,
                 "periodic_jitter expects 2 or 3 arguments in '" << spec << "'");
    const Time period = parse_time_or_throw(fields[0], spec);
    const Time jitter = parse_time_or_throw(fields[1], spec);
    const Time dmin = fields.size() == 3 ? parse_time_or_throw(fields[2], spec) : 1;
    return periodic_jitter(period, jitter, dmin);
  }
  if (name == "sporadic") {
    return sporadic(parse_time_or_throw(args, spec));
  }
  if (name == "burst") {
    const auto fields = util::split(args, ',');
    WHARF_EXPECT(fields.size() == 3, "burst expects 3 arguments in '" << spec << "'");
    return sporadic_burst(parse_time_or_throw(fields[0], spec),
                          parse_time_or_throw(fields[1], spec),
                          parse_time_or_throw(fields[2], spec));
  }
  if (name == "curve") {
    const auto parts = util::split(args, '|');
    WHARF_EXPECT(parts.size() == 1 || parts.size() == 2,
                 "curve expects 'd...;t' or 'd...;t|p...;pt' in '" << spec << "'");
    const auto parse_half = [&spec](const std::string& half, std::vector<Time>& prefix,
                                    Time& tail) {
      const auto halves = util::split(half, ';');
      WHARF_EXPECT(halves.size() == 2, "curve expects 'd2,d3,...;tail' in '" << spec << "'");
      for (const std::string& f : util::split(halves[0], ',')) {
        prefix.push_back(parse_time_or_throw(f, spec));
      }
      tail = parse_time_or_throw(halves[1], spec);
    };
    std::vector<Time> prefix;
    Time tail = 0;
    parse_half(parts[0], prefix, tail);
    if (parts.size() == 1) return delta_curve(std::move(prefix), tail);
    std::vector<Time> plus_prefix;
    Time plus_tail = 0;
    parse_half(parts[1], plus_prefix, plus_tail);
    return delta_curve_with_plus(std::move(prefix), tail, std::move(plus_prefix), plus_tail);
  }
  throw InvalidArgument(util::cat("unknown arrival model '", name, "' in spec '", spec, "'"));
}

}  // namespace wharf
