/// \file chain.hpp
/// Task chains: the unit of activation, analysis and deadline in the paper.

#ifndef WHARF_CORE_CHAIN_HPP
#define WHARF_CORE_CHAIN_HPP

#include <optional>
#include <string>
#include <vector>

#include "core/arrival.hpp"
#include "core/task.hpp"
#include "util/types.hpp"

namespace wharf {

/// Execution semantics of a chain (Section II):
///  * synchronous — an incoming activation is not processed until the
///    previous instances of the chain have finished;
///  * asynchronous — incoming activations are processed independently of
///    previous instances (instances may overlap and self-interfere).
enum class ChainKind { kSynchronous, kAsynchronous };

/// Human-readable kind name ("synchronous" / "asynchronous").
[[nodiscard]] std::string to_string(ChainKind kind);

/// A task chain σ: a finite sequence of distinct tasks activating each
/// other, an activation model for the header task, an optional relative
/// end-to-end deadline, and an overload flag (member of the paper's set
/// C_over of rarely-activated chains that cause transient overload).
class Chain {
 public:
  /// Aggregate used to construct a chain; validated by the constructor.
  struct Spec {
    std::string name;
    ChainKind kind = ChainKind::kSynchronous;
    ArrivalModelPtr arrival;
    std::optional<Time> deadline;  ///< relative end-to-end deadline D
    bool overload = false;         ///< member of C_over
    std::vector<Task> tasks;       ///< header first, tail last
  };

  /// Validates and builds.  Requirements: non-empty name; at least one
  /// task; an arrival model; task names unique and non-empty; WCETs >= 0;
  /// deadline >= 1 when present; overload chains must be synchronous
  /// (the paper treats them as such WLOG — see DESIGN.md §2).
  explicit Chain(Spec spec);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] ChainKind kind() const { return kind_; }
  [[nodiscard]] bool is_synchronous() const { return kind_ == ChainKind::kSynchronous; }
  [[nodiscard]] bool is_asynchronous() const { return kind_ == ChainKind::kAsynchronous; }
  [[nodiscard]] const ArrivalModel& arrival() const { return *arrival_; }
  [[nodiscard]] const ArrivalModelPtr& arrival_ptr() const { return arrival_; }
  [[nodiscard]] const std::optional<Time>& deadline() const { return deadline_; }
  [[nodiscard]] bool is_overload() const { return overload_; }

  /// Number of tasks n_a.
  [[nodiscard]] int size() const { return static_cast<int>(tasks_.size()); }
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }
  /// i-th task (0-based; the paper's τ^{i+1}).
  [[nodiscard]] const Task& task(int i) const { return tasks_[static_cast<std::size_t>(i)]; }
  /// First task of the chain (the paper's header task).
  [[nodiscard]] const Task& header() const { return tasks_.front(); }
  /// Last task of the chain (the paper's tail task).
  [[nodiscard]] const Task& tail() const { return tasks_.back(); }

  /// Sum of all task WCETs (the paper's C_σ).
  [[nodiscard]] Time total_wcet() const { return total_wcet_; }
  /// Smallest priority value among the chain's tasks (min_j π^j).
  [[nodiscard]] Priority min_priority() const { return min_priority_; }
  /// Index of the (unique) lowest-priority task.
  [[nodiscard]] int lowest_priority_index() const { return lowest_priority_index_; }

 private:
  std::string name_;
  ChainKind kind_;
  ArrivalModelPtr arrival_;
  std::optional<Time> deadline_;
  bool overload_;
  std::vector<Task> tasks_;
  Time total_wcet_ = 0;
  Priority min_priority_ = 0;
  int lowest_priority_index_ = 0;
};

}  // namespace wharf

#endif  // WHARF_CORE_CHAIN_HPP
