/// \file dmm_curve.hpp
/// Utilities over the deadline-miss-model curve k -> dmm(k).
///
/// dmm(k) is a monotone non-decreasing step function of k (Omega of
/// Lemma 4 grows with the window delta_plus(k), and the cap at k grows
/// too), which makes its breakpoints well-defined and binary-searchable.
/// These helpers answer the two questions weakly-hard designers actually
/// ask: "where does my guarantee degrade?" (breakpoints) and "up to which
/// horizon do I tolerate at most m misses?" (the (m,k) frontier).

#ifndef WHARF_CORE_DMM_CURVE_HPP
#define WHARF_CORE_DMM_CURVE_HPP

#include <vector>

#include "core/twca.hpp"

namespace wharf {

/// One step of the dmm curve: dmm(k) == dmm for all k in [k, next break).
struct DmmBreakpoint {
  Count k = 0;    ///< smallest k attaining this dmm value
  Count dmm = 0;  ///< dmm(k)
};

/// All breakpoints of k -> dmm(k) for k in [1, k_max]: the first entry is
/// k=1; every further entry is the smallest k where the value increases.
/// Uses binary search between steps (O(steps * log k_max) dmm queries).
[[nodiscard]] std::vector<DmmBreakpoint> dmm_breakpoints(const TwcaAnalyzer& analyzer, int chain,
                                                         Count k_max);

/// The weakly-hard (m,k) frontier: the largest k in [1, k_max] such that
/// dmm(k) <= m, or 0 when even dmm(1) > m.  A chain satisfying the
/// returned horizon misses at most m deadlines in any window of that
/// many activations.
[[nodiscard]] Count max_window_for_misses(const TwcaAnalyzer& analyzer, int chain, Count m,
                                          Count k_max);

}  // namespace wharf

#endif  // WHARF_CORE_DMM_CURVE_HPP
