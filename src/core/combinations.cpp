#include "core/combinations.hpp"

#include <algorithm>
#include <map>

#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf {

int OverloadStructure::total_active() const {
  int total = 0;
  for (const auto& pc : per_chain) total += static_cast<int>(pc.active.size());
  return total;
}

OverloadStructure overload_structure(const System& system, int target) {
  WHARF_EXPECT(target >= 0 && target < system.size(),
               "chain index " << target << " out of range [0, " << system.size() << ")");
  WHARF_EXPECT(!system.chain(target).is_overload(),
               "DMM target '" << system.chain(target).name() << "' must not be an overload chain");
  OverloadStructure out;
  out.target = target;
  for (int a : system.overload_indices()) {
    OverloadActiveSegments entry;
    entry.chain = a;
    entry.active = active_segments_wrt(system.chain(a), system.chain(target));
    out.per_chain.push_back(std::move(entry));
  }
  return out;
}

namespace {

/// Per-chain alternatives: the empty choice plus every non-empty subset
/// of active segments drawn from a single segment (Def. 9).
std::vector<std::vector<ActiveSegmentId>> chain_choices(const OverloadActiveSegments& pc,
                                                        int chain_pos) {
  std::vector<std::vector<ActiveSegmentId>> choices;
  choices.emplace_back();  // the empty choice

  // Group active-segment indices by their parent segment.
  std::map<int, std::vector<int>> by_segment;
  for (int i = 0; i < static_cast<int>(pc.active.size()); ++i) {
    by_segment[pc.active[static_cast<std::size_t>(i)].segment_index].push_back(i);
  }
  for (const auto& [segment, members] : by_segment) {
    const int m = static_cast<int>(members.size());
    WHARF_EXPECT(m <= 20, "segment " << segment << " has " << m
                                     << " active segments; combination enumeration would "
                                        "require 2^"
                                     << m << " subsets");
    for (unsigned mask = 1; mask < (1u << m); ++mask) {
      std::vector<ActiveSegmentId> subset;
      for (int bit = 0; bit < m; ++bit) {
        if ((mask >> bit) & 1u) {
          subset.push_back(ActiveSegmentId{chain_pos, members[static_cast<std::size_t>(bit)]});
        }
      }
      choices.push_back(std::move(subset));
    }
  }
  return choices;
}

Time segment_cost(const OverloadStructure& structure, const ActiveSegmentId& id) {
  return structure.per_chain[static_cast<std::size_t>(id.chain_pos)]
      .active[static_cast<std::size_t>(id.active_index)]
      .cost;
}

}  // namespace

std::vector<Combination> enumerate_combinations(const System& system,
                                                const OverloadStructure& structure,
                                                std::size_t max_count) {
  (void)system;
  std::vector<Combination> result;
  result.emplace_back();  // start from the empty combination; dropped at the end

  for (int chain_pos = 0; chain_pos < static_cast<int>(structure.per_chain.size()); ++chain_pos) {
    const auto choices =
        chain_choices(structure.per_chain[static_cast<std::size_t>(chain_pos)], chain_pos);
    std::vector<Combination> next;
    next.reserve(result.size() * choices.size());
    for (const Combination& base : result) {
      for (const auto& choice : choices) {
        WHARF_EXPECT(next.size() < max_count,
                     "combination enumeration exceeded the cap of " << max_count
                                                                    << "; raise "
                                                                       "TwcaOptions::max_combinations");
        Combination c = base;
        for (const ActiveSegmentId& id : choice) {
          c.segments.push_back(id);
          c.cost = sat_add(c.cost, segment_cost(structure, id));
        }
        next.push_back(std::move(c));
      }
    }
    result = std::move(next);
  }

  // Drop the globally-empty combination (it is schedulable by definition
  // whenever the typical slack is non-negative).
  std::erase_if(result, [](const Combination& c) { return c.segments.empty(); });
  return result;
}

std::vector<Combination> unschedulable_combinations(const System& system,
                                                    const OverloadStructure& structure, Time slack,
                                                    std::size_t max_count, bool minimal_only) {
  WHARF_EXPECT(slack >= 0,
               "unschedulable_combinations requires non-negative slack (a negative slack means "
               "the chain misses deadlines even without overload); got "
                   << slack);
  std::vector<Combination> all = enumerate_combinations(system, structure, max_count);
  std::vector<Combination> out;
  for (Combination& c : all) {
    if (c.cost <= slack) continue;  // schedulable by Eq. (5)
    if (minimal_only) {
      Time min_member = kTimeInfinity;
      for (const ActiveSegmentId& id : c.segments) {
        min_member = std::min(min_member, segment_cost(structure, id));
      }
      // Minimal iff removing the cheapest member makes it schedulable:
      // every proper subset then has cost <= slack as well.
      if (c.cost - min_member > slack) continue;
    }
    out.push_back(std::move(c));
  }
  return out;
}

std::string format_combination(const System& system, const OverloadStructure& structure,
                               const Combination& combination) {
  std::string out = "{";
  for (std::size_t i = 0; i < combination.segments.size(); ++i) {
    const ActiveSegmentId& id = combination.segments[i];
    const auto& pc = structure.per_chain[static_cast<std::size_t>(id.chain_pos)];
    const Chain& chain = system.chain(pc.chain);
    if (i != 0) out += ',';
    out += format_task_list(chain, pc.active[static_cast<std::size_t>(id.active_index)].tasks);
  }
  out += '}';
  return out;
}

}  // namespace wharf
