#include "core/arrival_table.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace wharf {

namespace {

/// Dense prefixes beyond this are not worth materializing (a jitter
/// model with a huge jitter/slack ratio, say) — fall back to virtual
/// evaluation instead of burning cache on a table nobody scans.
constexpr Count kMaxDenseEntries = 4096;

}  // namespace

ArrivalTable::ArrivalTable(ArrivalModelPtr model) : model_(std::move(model)) {
  WHARF_ASSERT(model_ != nullptr);
  const auto spec = model_->tail_spec();
  if (!spec.has_value()) return;
  if (spec->valid_from < 1 || spec->block < 1 || spec->span < 1) return;
  // Cover q in [1, valid_from + block - 1]: then every q beyond the dense
  // prefix reduces to a dense anchor in (n - block, n] plus whole spans.
  const Count dense = spec->valid_from + spec->block - 1;
  if (dense > kMaxDenseEntries) return;
  delta_.reserve(static_cast<std::size_t>(dense));
  for (Count q = 1; q <= dense; ++q) delta_.push_back(model_->delta_minus(q));
  WHARF_ASSERT(delta_.front() == 0);
  WHARF_ASSERT(std::is_sorted(delta_.begin(), delta_.end()));
  block_ = spec->block;
  span_ = spec->span;
}

Count ArrivalTable::eta_plus(Time window) const {
  if (delta_.empty()) return model_->eta_plus(window);
  if (window <= 0) return 0;
  // Near-sentinel windows (never produced by the analysis, whose windows
  // stay below the divergence guard) go through the model so the tail
  // ceil_div below cannot overflow.
  if (window >= kTimeInfinity - span_) return model_->eta_plus(window);
  // eta_plus(dt) = max{ q | delta_minus(q) < dt }.
  if (window <= delta_.back()) {
    // Dense range: the answer is the count of entries < window.
    const auto it = std::lower_bound(delta_.begin(), delta_.end(), window);
    return static_cast<Count>(it - delta_.begin());
  }
  // Tail range: every q > n is r + m * block for a unique dense anchor
  // r in (n - block, n] and m >= 1, with
  //   delta_minus(r + m * block) = delta_[r - 1] + m * span.
  // Maximize r + m * block over the residues (window > back >= delta_[r-1],
  // so ceil_div's argument is positive and m >= 0).
  const Count n = static_cast<Count>(delta_.size());
  Count best = n;
  for (Count r = n - block_ + 1; r <= n; ++r) {
    const Time anchor = delta_[static_cast<std::size_t>(r - 1)];
    const Count m = ceil_div(window - anchor, span_) - 1;  // max m: anchor + m*span < window
    best = std::max(best, sat_add(r, sat_mul(m, block_)));
  }
  return best;
}

Time ArrivalTable::delta_minus(Count q) const {
  if (delta_.empty()) return model_->delta_minus(q);
  if (q <= 1) return 0;
  const Count n = static_cast<Count>(delta_.size());
  if (q <= n) return delta_[static_cast<std::size_t>(q - 1)];
  // Near-sentinel counts go through the model (see eta_plus).
  if (q >= kCountInfinity - block_) return model_->delta_minus(q);
  // Reduce q to its dense anchor in (n - block, n] plus whole spans.
  const Count m = ceil_div(q - n, block_);
  const Count r = q - sat_mul(m, block_);
  return sat_add(delta_[static_cast<std::size_t>(r - 1)], sat_mul(m, span_));
}

}  // namespace wharf
