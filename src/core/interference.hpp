/// \file interference.hpp
/// Per-target-chain interference classification, precomputed once and
/// shared by the busy-window fixed point (Theorem 1), the typical bound
/// L_b(q) (Eq. 4) and the TWCA combination machinery.

#ifndef WHARF_CORE_INTERFERENCE_HPP
#define WHARF_CORE_INTERFERENCE_HPP

#include <memory>
#include <optional>
#include <vector>

#include "core/arrival_table.hpp"
#include "core/segments.hpp"
#include "core/system.hpp"

namespace wharf {

/// How one other chain σ_a interferes with the analyzed chain σ_b.
struct ChainInterference {
  int chain = -1;          ///< index of σ_a in the system
  bool deferred = false;   ///< Def. 2: σ_a ∈ DC(b)?  (else σ_a ∈ IC(b))
  /// Filled only when deferred:
  std::vector<Segment> segments;       ///< Def. 3, S^a_b
  std::optional<Segment> critical;     ///< Def. 4
  std::vector<int> header_segment;     ///< Def. 5 (w.r.t. b), task indices
  Time header_segment_cost = 0;        ///< C_{s_header_{a,b}}
  Time segments_total_cost = 0;        ///< Σ_{s ∈ S^a_b} C_s
  /// Flat arrival table of σ_a (arrival_table.hpp), built once with the
  /// context so the busy-window kernel evaluates η⁺ without virtual
  /// dispatch.  May be null in hand-built contexts; the kernel then
  /// falls back to the chain's arrival model.
  std::shared_ptr<const ArrivalTable> table;
};

/// Everything the latency analysis of chain σ_b needs to know about the
/// rest of the system.
struct InterferenceContext {
  int target = -1;  ///< index of σ_b
  /// Def. 5 (first bullet) for σ_b itself: prefix before σ_b's own
  /// lowest-priority task; used by the asynchronous self-interference
  /// term of Eq. (1).
  std::vector<int> self_header;
  Time self_header_cost = 0;
  /// One entry per chain other than σ_b, in chain order.
  std::vector<ChainInterference> others;
  /// Flat arrival table of σ_b itself (null in hand-built contexts).
  std::shared_ptr<const ArrivalTable> self_table;
};

/// Builds the interference context of chain `target`.
[[nodiscard]] InterferenceContext make_interference_context(const System& system, int target);

}  // namespace wharf

#endif  // WHARF_CORE_INTERFERENCE_HPP
