/// \file path_analysis.hpp
/// Paths: sequences of distinct task chains activating each other
/// (paper footnote 1: fork/join systems without cycles decompose into
/// chains plus paths over them).
///
/// Composition model (v1, documented soundness argument):
///  * Chain instances correspond 1:1 along the path (chain i's n-th
///    completion activates chain i+1's n-th instance; completions stay
///    in activation order because equal-priority jobs run FIFO).
///  * End-to-end latency of a path instance is the sum of the per-chain
///    latencies, so  WCL_path <= Σ_i WCL_i.
///  * For deadline miss models, an end-to-end deadline D is split into
///    per-chain budgets D_i with Σ D_i = D; a path instance can only
///    miss D if some chain instance misses its budget, hence
///    dmm_path(k) <= Σ_i dmm_i^{D_i}(k)  (each chain sees exactly k
///    instances in k consecutive path instances).
///
/// Precondition: each chain's *declared* activation model must bound the
/// activations it receives through the link (the usual CPA contract).
/// For a periodic or periodic-with-jitter upstream chain,
/// derived_output_model() constructs a sound such model for the
/// downstream chain.

#ifndef WHARF_CORE_PATH_ANALYSIS_HPP
#define WHARF_CORE_PATH_ANALYSIS_HPP

#include <optional>
#include <string>
#include <vector>

#include "core/twca.hpp"

namespace wharf {

/// A path: an ordered sequence of distinct chains of one system.
struct PathSpec {
  std::vector<int> chains;        ///< chain indices, in path order
  std::optional<Time> deadline;   ///< end-to-end deadline (needed for DMM)
  /// Optional per-chain deadline budgets (same length as `chains`,
  /// summing to `deadline`).  Empty: split proportionally to the
  /// standalone WCLs.
  std::vector<Time> budgets;
};

/// End-to-end latency bound of a path.
struct PathLatencyResult {
  bool bounded = false;
  std::string reason;             ///< set when !bounded
  Time wcl = 0;                   ///< Σ per-chain WCL
  std::vector<Time> per_chain_wcl;
};

/// End-to-end deadline miss model of a path.
struct PathDmmResult {
  Count k = 0;
  Count dmm = 0;
  DmmStatus status = DmmStatus::kNoGuarantee;
  std::string reason;
  std::vector<Time> budgets;      ///< the per-chain budgets used
  std::vector<Count> per_chain;   ///< dmm_i^{D_i}(k)
};

/// Artifact-boundary interface of path analysis: where the per-chain
/// stage results come from.  path_latency()/path_dmm() compose purely
/// over this oracle, so callers that cache per-chain artifacts (the
/// Engine's ArtifactStore pipeline) plug in directly, while
/// PathAnalyzer supplies a standalone-analyzer default.
class PathChainOracle {
 public:
  virtual ~PathChainOracle() = default;

  /// Full latency result of `chain` (Theorem 2).
  [[nodiscard]] virtual LatencyResult latency(int chain) = 0;

  /// dmm(k) of `chain` with its deadline replaced by `budget` (the
  /// per-chain share of the end-to-end deadline).
  [[nodiscard]] virtual DmmResult dmm_with_budget(int chain, Time budget, Count k) = 0;
};

/// Validates a path against a system (>= 1 chain, indices in range and
/// distinct, no overload chains); throws wharf::InvalidArgument.
void validate_path(const System& system, const PathSpec& path);

/// WCL_path <= Σ WCL_i (unbounded when any chain is).
[[nodiscard]] PathLatencyResult path_latency(const System& system, const PathSpec& path,
                                             PathChainOracle& oracle);

/// dmm_path(k) <= min(Σ dmm_i^{D_i}(k), k); requires path.deadline.
[[nodiscard]] PathDmmResult path_dmm(const System& system, const PathSpec& path, Count k,
                                     PathChainOracle& oracle);

/// Path analyses on top of a system (validates the path: >= 1 chain,
/// distinct indices, no overload chains on the path).  A convenience
/// façade over path_latency()/path_dmm() with a TwcaAnalyzer-backed
/// oracle.
class PathAnalyzer {
 public:
  explicit PathAnalyzer(System system, TwcaOptions options = {});

  [[nodiscard]] const System& system() const { return system_; }

  /// WCL_path <= Σ WCL_i (unbounded when any chain is).
  [[nodiscard]] PathLatencyResult latency(const PathSpec& path) const;

  /// dmm_path(k) <= min(Σ dmm_i^{D_i}(k), k); requires path.deadline.
  [[nodiscard]] PathDmmResult dmm(const PathSpec& path, Count k) const;

 private:
  System system_;
  TwcaOptions options_;
};

/// A sound activation model for the *outputs* (completions) of a chain
/// whose input is periodic or periodic-with-jitter: same period, jitter
/// increased by (WCL - C) — a chain's latency varies between its own
/// total WCET (lower bound on any uniprocessor) and its WCL — and
/// minimum output distance 1.  Throws for other input model shapes.
[[nodiscard]] ArrivalModelPtr derived_output_model(const Chain& chain,
                                                   const LatencyResult& latency);

}  // namespace wharf

#endif  // WHARF_CORE_PATH_ANALYSIS_HPP
