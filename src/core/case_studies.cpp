#include "core/case_studies.hpp"

namespace wharf::case_studies {

namespace {

Chain make_chain(std::string name, ChainKind kind, ArrivalModelPtr arrival,
                 std::optional<Time> deadline, bool overload, std::vector<Task> tasks) {
  Chain::Spec spec;
  spec.name = std::move(name);
  spec.kind = kind;
  spec.arrival = std::move(arrival);
  spec.deadline = deadline;
  spec.overload = overload;
  spec.tasks = std::move(tasks);
  return Chain(std::move(spec));
}

}  // namespace

System figure1_system() {
  std::vector<Chain> chains;
  chains.push_back(make_chain(
      "sigma_a", ChainKind::kSynchronous, periodic(100), Time{100}, false,
      {Task{"tau1_a", 7, 1}, Task{"tau2_a", 9, 1}, Task{"tau3_a", 5, 1}, Task{"tau4_a", 2, 1},
       Task{"tau5_a", 4, 1}, Task{"tau6_a", 1, 1}}));
  chains.push_back(make_chain("sigma_b", ChainKind::kSynchronous, periodic(100), Time{100}, false,
                              {Task{"tau1_b", 8, 1}, Task{"tau2_b", 3, 1}, Task{"tau3_b", 6, 1}}));
  return System("figure1", std::move(chains));
}

System date17_case_study(OverloadModel model) {
  const bool rare = model == OverloadModel::kRareOverload;
  // Calibrated long-window behaviour of the industrial overload curve;
  // see OverloadModel::kRareOverload for the derivation.
  const auto overload_arrival = [rare](Time d2) -> ArrivalModelPtr {
    if (!rare) return sporadic(d2);
    return delta_curve({d2, 15200, 50000}, 35000);
  };

  std::vector<Chain> chains;
  chains.push_back(make_chain(
      "sigma_d", ChainKind::kSynchronous, periodic(200), Time{200}, false,
      {Task{"tau1_d", 11, 38}, Task{"tau2_d", 10, 6}, Task{"tau3_d", 9, 27}, Task{"tau4_d", 5, 6},
       Task{"tau5_d", 2, 38}}));
  chains.push_back(make_chain("sigma_c", ChainKind::kSynchronous, periodic(200), Time{200}, false,
                              {Task{"tau1_c", 8, 4}, Task{"tau2_c", 7, 6}, Task{"tau3_c", 1, 41}}));
  chains.push_back(make_chain(
      "sigma_b", ChainKind::kSynchronous, overload_arrival(600), std::nullopt, true,
      {Task{"tau1_b", 13, 10}, Task{"tau2_b", 12, 10}, Task{"tau3_b", 6, 10}}));
  chains.push_back(make_chain("sigma_a", ChainKind::kSynchronous, overload_arrival(700),
                              std::nullopt, true,
                              {Task{"tau1_a", 4, 10}, Task{"tau2_a", 3, 10}}));
  return System("date17_case_study", std::move(chains));
}

}  // namespace wharf::case_studies
