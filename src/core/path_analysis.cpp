#include "core/path_analysis.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf {

namespace {

/// Splits an end-to-end deadline into per-chain budgets: explicit
/// budgets when given (validated), else proportional to the standalone
/// WCLs.
std::vector<Time> resolve_budgets(const PathSpec& path, const std::vector<Time>& wcls) {
  const Time deadline = *path.deadline;
  const auto n = static_cast<Time>(path.chains.size());
  if (!path.budgets.empty()) {
    WHARF_EXPECT(path.budgets.size() == path.chains.size(),
                 "expected " << path.chains.size() << " budgets, got " << path.budgets.size());
    Time sum = 0;
    for (Time b : path.budgets) {
      WHARF_EXPECT(b >= 1, "per-chain budget must be >= 1, got " << b);
      sum = sat_add(sum, b);
    }
    WHARF_EXPECT(sum == deadline, "budgets sum to " << sum << ", path deadline is " << deadline);
    return path.budgets;
  }

  WHARF_EXPECT(deadline >= n,
               "path deadline " << deadline << " cannot be split over " << n << " chains");
  // Proportional to standalone WCLs (weight >= 1 so that zero-cost chains
  // still receive a budget).  The products run in 128-bit arithmetic:
  // deadline * weight overflows Time for large-but-bounded WCLs, and the
  // quotient is always <= deadline.
  Time total_weight = 0;
  std::vector<Time> weights;
  for (Time w : wcls) {
    weights.push_back(std::max<Time>(w, 1));
    total_weight = sat_add(total_weight, weights.back());
  }
  std::vector<Time> budgets(path.chains.size(), 1);
  Time assigned = 0;
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    const auto share = static_cast<Time>(static_cast<__int128>(deadline) * weights[i] /
                                         total_weight);
    budgets[i] = std::max<Time>(1, share);
    assigned = sat_add(assigned, budgets[i]);
  }
  // Fix the rounding drift on the last chain (keeping every budget >= 1).
  Time drift = deadline - assigned;
  for (std::size_t i = budgets.size(); i-- > 0 && drift != 0;) {
    const Time adjusted = std::max<Time>(1, budgets[i] + drift);
    drift -= adjusted - budgets[i];
    budgets[i] = adjusted;
  }
  WHARF_ASSERT(std::accumulate(budgets.begin(), budgets.end(), Time{0}) == deadline);
  return budgets;
}

/// The default artifact source: standalone analyses on the given system
/// (one TwcaAnalyzer per budgeted variant, as PathAnalyzer always did).
class AnalyzerOracle final : public PathChainOracle {
 public:
  AnalyzerOracle(const System& system, const TwcaOptions& options)
      : system_(system), options_(options) {}

  LatencyResult latency(int chain) override {
    return latency_analysis(system_, chain, options_.analysis);
  }

  DmmResult dmm_with_budget(int chain, Time budget, Count k) override {
    const TwcaAnalyzer analyzer{system_.with_deadline(chain, budget), options_};
    return analyzer.dmm(chain, k);
  }

 private:
  const System& system_;
  const TwcaOptions& options_;
};

}  // namespace

void validate_path(const System& system, const PathSpec& path) {
  WHARF_EXPECT(!path.chains.empty(), "a path needs at least one chain");
  std::unordered_set<int> seen;
  for (int c : path.chains) {
    WHARF_EXPECT(c >= 0 && c < system.size(),
                 "path chain index " << c << " out of range [0, " << system.size() << ")");
    WHARF_EXPECT(seen.insert(c).second, "path lists chain '" << system.chain(c).name()
                                                             << "' twice (chains in a path "
                                                                "must be distinct)");
    WHARF_EXPECT(!system.chain(c).is_overload(),
                 "overload chain '" << system.chain(c).name() << "' cannot be on a path");
  }
}

PathLatencyResult path_latency(const System& system, const PathSpec& path,
                               PathChainOracle& oracle) {
  validate_path(system, path);
  PathLatencyResult result;
  for (int c : path.chains) {
    const LatencyResult chain_result = oracle.latency(c);
    if (!chain_result.bounded) {
      result.bounded = false;
      result.reason = util::cat("chain '", system.chain(c).name(),
                                "' has no latency bound: ", chain_result.reason);
      return result;
    }
    result.per_chain_wcl.push_back(chain_result.wcl);
    result.wcl = sat_add(result.wcl, chain_result.wcl);
  }
  result.bounded = true;
  return result;
}

PathDmmResult path_dmm(const System& system, const PathSpec& path, Count k,
                       PathChainOracle& oracle) {
  validate_path(system, path);
  WHARF_EXPECT(k >= 1, "dmm requires k >= 1, got " << k);
  WHARF_EXPECT(path.deadline.has_value(), "path DMM requires an end-to-end deadline");

  PathDmmResult result;
  result.k = k;

  const PathLatencyResult lat = path_latency(system, path, oracle);
  if (!lat.bounded) {
    result.status = DmmStatus::kNoGuarantee;
    result.reason = lat.reason;
    result.dmm = k;
    return result;
  }
  if (lat.wcl <= *path.deadline) {
    result.status = DmmStatus::kAlwaysMeets;
    result.dmm = 0;
    return result;
  }

  result.budgets = resolve_budgets(path, lat.per_chain_wcl);

  Count total = 0;
  for (std::size_t i = 0; i < path.chains.size(); ++i) {
    const int c = path.chains[i];
    const DmmResult chain_dmm = oracle.dmm_with_budget(c, result.budgets[i], k);
    if (chain_dmm.status == DmmStatus::kNoGuarantee) {
      result.status = DmmStatus::kNoGuarantee;
      result.reason = util::cat("chain '", system.chain(c).name(), "' with budget ",
                                result.budgets[i], ": ", chain_dmm.reason);
      result.dmm = k;
      return result;
    }
    result.per_chain.push_back(chain_dmm.dmm);
    total += chain_dmm.dmm;
  }
  result.status = DmmStatus::kBounded;
  result.dmm = std::min<Count>(total, k);
  return result;
}

PathAnalyzer::PathAnalyzer(System system, TwcaOptions options)
    : system_(std::move(system)), options_(options) {}

PathLatencyResult PathAnalyzer::latency(const PathSpec& path) const {
  AnalyzerOracle oracle{system_, options_};
  return path_latency(system_, path, oracle);
}

PathDmmResult PathAnalyzer::dmm(const PathSpec& path, Count k) const {
  AnalyzerOracle oracle{system_, options_};
  return path_dmm(system_, path, k, oracle);
}

ArrivalModelPtr derived_output_model(const Chain& chain, const LatencyResult& latency) {
  WHARF_EXPECT(latency.bounded, "derived_output_model requires a bounded latency for chain '"
                                    << chain.name() << "'");
  const Time shift = latency.wcl - chain.total_wcet();
  WHARF_ASSERT(shift >= 0);

  const ArrivalModel& in = chain.arrival();
  // Lower curve: completions c_n = a_n + L_n with L_n in [C, WCL], so
  // any q consecutive outputs span at least delta_in(q) - (WCL - C).
  // Beyond a fixed prefix every library model grows linearly, so the
  // tail slope is exact.
  constexpr Count kPrefix = 64;
  std::vector<Time> prefix;
  for (Count q = 2; q <= kPrefix + 1; ++q) {
    const Time d = in.delta_minus(q);
    prefix.push_back(d > shift ? d - shift : 0);
  }
  const Time slope = in.delta_minus(kPrefix + 2) - in.delta_minus(kPrefix + 1);
  WHARF_EXPECT(slope >= 1, "input arrival model of chain '"
                               << chain.name()
                               << "' has a non-increasing long-run delta curve");

  // Upper curve: outputs span at most delta_plus_in(q) + (WCL - C).
  // Preserved only when the input bounds it (finite delta_plus), which
  // is what keeps Lemma 4 applicable downstream on a path.
  if (is_infinite(in.delta_plus(2))) {
    return delta_curve(std::move(prefix), slope);
  }
  std::vector<Time> plus_prefix;
  for (Count q = 2; q <= kPrefix + 1; ++q) {
    plus_prefix.push_back(sat_add(in.delta_plus(q), shift));
  }
  const Time plus_slope = in.delta_plus(kPrefix + 2) - in.delta_plus(kPrefix + 1);
  return delta_curve_with_plus(std::move(prefix), slope, std::move(plus_prefix),
                               std::max(plus_slope, slope));
}

}  // namespace wharf
