#include "core/path_analysis.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf {

namespace {

/// Copy of `system` with the deadline of chain `target` replaced.
System with_deadline(const System& system, int target, Time deadline) {
  std::vector<Chain> chains;
  chains.reserve(static_cast<std::size_t>(system.size()));
  for (int c = 0; c < system.size(); ++c) {
    const Chain& chain = system.chain(c);
    Chain::Spec spec;
    spec.name = chain.name();
    spec.kind = chain.kind();
    spec.arrival = chain.arrival_ptr();
    spec.deadline = c == target ? std::optional<Time>(deadline) : chain.deadline();
    spec.overload = chain.is_overload();
    spec.tasks = chain.tasks();
    chains.emplace_back(std::move(spec));
  }
  return System(system.name(), std::move(chains));
}

}  // namespace

PathAnalyzer::PathAnalyzer(System system, TwcaOptions options)
    : system_(std::move(system)), options_(options) {}

void PathAnalyzer::validate_path(const PathSpec& path) const {
  WHARF_EXPECT(!path.chains.empty(), "a path needs at least one chain");
  std::unordered_set<int> seen;
  for (int c : path.chains) {
    WHARF_EXPECT(c >= 0 && c < system_.size(),
                 "path chain index " << c << " out of range [0, " << system_.size() << ")");
    WHARF_EXPECT(seen.insert(c).second, "path lists chain '" << system_.chain(c).name()
                                                             << "' twice (chains in a path "
                                                                "must be distinct)");
    WHARF_EXPECT(!system_.chain(c).is_overload(),
                 "overload chain '" << system_.chain(c).name() << "' cannot be on a path");
  }
}

PathLatencyResult PathAnalyzer::latency(const PathSpec& path) const {
  validate_path(path);
  PathLatencyResult result;
  for (int c : path.chains) {
    const LatencyResult chain_result = latency_analysis(system_, c, options_.analysis);
    if (!chain_result.bounded) {
      result.bounded = false;
      result.reason = util::cat("chain '", system_.chain(c).name(),
                                "' has no latency bound: ", chain_result.reason);
      return result;
    }
    result.per_chain_wcl.push_back(chain_result.wcl);
    result.wcl = sat_add(result.wcl, chain_result.wcl);
  }
  result.bounded = true;
  return result;
}

std::vector<Time> PathAnalyzer::resolve_budgets(const PathSpec& path,
                                                const std::vector<Time>& wcls) const {
  const Time deadline = *path.deadline;
  const auto n = static_cast<Time>(path.chains.size());
  if (!path.budgets.empty()) {
    WHARF_EXPECT(path.budgets.size() == path.chains.size(),
                 "expected " << path.chains.size() << " budgets, got " << path.budgets.size());
    Time sum = 0;
    for (Time b : path.budgets) {
      WHARF_EXPECT(b >= 1, "per-chain budget must be >= 1, got " << b);
      sum = sat_add(sum, b);
    }
    WHARF_EXPECT(sum == deadline, "budgets sum to " << sum << ", path deadline is " << deadline);
    return path.budgets;
  }

  WHARF_EXPECT(deadline >= n,
               "path deadline " << deadline << " cannot be split over " << n << " chains");
  // Proportional to standalone WCLs (weight >= 1 so that zero-cost chains
  // still receive a budget).
  Time total_weight = 0;
  std::vector<Time> weights;
  for (Time w : wcls) {
    weights.push_back(std::max<Time>(w, 1));
    total_weight += weights.back();
  }
  std::vector<Time> budgets(path.chains.size(), 1);
  Time assigned = 0;
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    budgets[i] = std::max<Time>(1, deadline * weights[i] / total_weight);
    assigned += budgets[i];
  }
  // Fix the rounding drift on the last chain (keeping every budget >= 1).
  Time drift = deadline - assigned;
  for (std::size_t i = budgets.size(); i-- > 0 && drift != 0;) {
    const Time adjusted = std::max<Time>(1, budgets[i] + drift);
    drift -= adjusted - budgets[i];
    budgets[i] = adjusted;
  }
  WHARF_ASSERT(std::accumulate(budgets.begin(), budgets.end(), Time{0}) == deadline);
  return budgets;
}

PathDmmResult PathAnalyzer::dmm(const PathSpec& path, Count k) const {
  validate_path(path);
  WHARF_EXPECT(k >= 1, "dmm requires k >= 1, got " << k);
  WHARF_EXPECT(path.deadline.has_value(), "path DMM requires an end-to-end deadline");

  PathDmmResult result;
  result.k = k;

  const PathLatencyResult lat = latency(path);
  if (!lat.bounded) {
    result.status = DmmStatus::kNoGuarantee;
    result.reason = lat.reason;
    result.dmm = k;
    return result;
  }
  if (lat.wcl <= *path.deadline) {
    result.status = DmmStatus::kAlwaysMeets;
    result.dmm = 0;
    return result;
  }

  result.budgets = resolve_budgets(path, lat.per_chain_wcl);

  Count total = 0;
  for (std::size_t i = 0; i < path.chains.size(); ++i) {
    const int c = path.chains[i];
    const System budgeted = with_deadline(system_, c, result.budgets[i]);
    TwcaAnalyzer analyzer{budgeted, options_};
    const DmmResult chain_dmm = analyzer.dmm(c, k);
    if (chain_dmm.status == DmmStatus::kNoGuarantee) {
      result.status = DmmStatus::kNoGuarantee;
      result.reason = util::cat("chain '", system_.chain(c).name(), "' with budget ",
                                result.budgets[i], ": ", chain_dmm.reason);
      result.dmm = k;
      return result;
    }
    result.per_chain.push_back(chain_dmm.dmm);
    total += chain_dmm.dmm;
  }
  result.status = DmmStatus::kBounded;
  result.dmm = std::min<Count>(total, k);
  return result;
}

ArrivalModelPtr derived_output_model(const Chain& chain, const LatencyResult& latency) {
  WHARF_EXPECT(latency.bounded, "derived_output_model requires a bounded latency for chain '"
                                    << chain.name() << "'");
  const Time shift = latency.wcl - chain.total_wcet();
  WHARF_ASSERT(shift >= 0);

  const ArrivalModel& in = chain.arrival();
  // Lower curve: completions c_n = a_n + L_n with L_n in [C, WCL], so
  // any q consecutive outputs span at least delta_in(q) - (WCL - C).
  // Beyond a fixed prefix every library model grows linearly, so the
  // tail slope is exact.
  constexpr Count kPrefix = 64;
  std::vector<Time> prefix;
  for (Count q = 2; q <= kPrefix + 1; ++q) {
    const Time d = in.delta_minus(q);
    prefix.push_back(d > shift ? d - shift : 0);
  }
  const Time slope = in.delta_minus(kPrefix + 2) - in.delta_minus(kPrefix + 1);
  WHARF_EXPECT(slope >= 1, "input arrival model of chain '"
                               << chain.name()
                               << "' has a non-increasing long-run delta curve");

  // Upper curve: outputs span at most delta_plus_in(q) + (WCL - C).
  // Preserved only when the input bounds it (finite delta_plus), which
  // is what keeps Lemma 4 applicable downstream on a path.
  if (is_infinite(in.delta_plus(2))) {
    return delta_curve(std::move(prefix), slope);
  }
  std::vector<Time> plus_prefix;
  for (Count q = 2; q <= kPrefix + 1; ++q) {
    plus_prefix.push_back(sat_add(in.delta_plus(q), shift));
  }
  const Time plus_slope = in.delta_plus(kPrefix + 2) - in.delta_plus(kPrefix + 1);
  return delta_curve_with_plus(std::move(prefix), slope, std::move(plus_prefix),
                               std::max(plus_slope, slope));
}

}  // namespace wharf
