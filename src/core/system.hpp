/// \file system.hpp
/// A uniprocessor SPP system: a finite set of disjoint task chains.

#ifndef WHARF_CORE_SYSTEM_HPP
#define WHARF_CORE_SYSTEM_HPP

#include <optional>
#include <string>
#include <vector>

#include "core/chain.hpp"

namespace wharf {

/// Identifies a task by chain index and task position within the chain.
struct TaskRef {
  int chain = -1;
  int task = -1;

  friend bool operator==(const TaskRef&, const TaskRef&) = default;
};

/// The system model of Section II: disjoint task chains on one processor
/// under Static Priority Preemptive scheduling.  Validation enforces the
/// paper's standing assumptions: globally unique task priorities (the
/// paper's strict comparisons presume a total priority order) and
/// synchronous overload chains.
class System {
 public:
  /// Validates and builds; see class comment for the invariants.
  System(std::string name, std::vector<Chain> chains);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Chain>& chains() const { return chains_; }
  /// Number of chains m.
  [[nodiscard]] int size() const { return static_cast<int>(chains_.size()); }
  [[nodiscard]] const Chain& chain(int i) const { return chains_[static_cast<std::size_t>(i)]; }
  /// Index of the chain with the given name, if any.
  [[nodiscard]] std::optional<int> chain_index(const std::string& chain_name) const;

  /// Total number of tasks across all chains.
  [[nodiscard]] int task_count() const { return task_count_; }
  /// Indices of overload chains (the paper's C_over), in chain order.
  [[nodiscard]] const std::vector<int>& overload_indices() const { return overload_indices_; }
  /// Indices of non-overload chains, in chain order.
  [[nodiscard]] const std::vector<int>& regular_indices() const { return regular_indices_; }

  /// Long-run processor utilization upper bound: Σ_a C_a · rate⁺_a.
  [[nodiscard]] double utilization() const;

  /// Priorities of all tasks in flat order (chains in order, tasks in
  /// order).  Companion of with_priorities() for Experiment 2.
  [[nodiscard]] std::vector<Priority> flat_priorities() const;

  /// Returns a copy of this system with task priorities replaced by
  /// `priorities` (flat order, size == task_count()).  Used to explore
  /// random priority assignments (paper Experiment 2).
  [[nodiscard]] System with_priorities(const std::vector<Priority>& priorities) const;

  /// Returns a copy of this system with the deadline of chain `chain`
  /// replaced (std::nullopt removes it).  Used by path analysis to give
  /// a chain its per-chain deadline budget.
  [[nodiscard]] System with_deadline(int chain, std::optional<Time> deadline) const;

  /// Resolves a "chain.task" dotted name; returns std::nullopt if unknown.
  [[nodiscard]] std::optional<TaskRef> find_task(const std::string& dotted) const;

 private:
  std::string name_;
  std::vector<Chain> chains_;
  int task_count_ = 0;
  std::vector<int> overload_indices_;
  std::vector<int> regular_indices_;
};

}  // namespace wharf

#endif  // WHARF_CORE_SYSTEM_HPP
