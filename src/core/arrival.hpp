/// \file arrival.hpp
/// Activation models of task chains, expressed as arrival curves.
///
/// Following the paper (Section II, citing real-time calculus [7]):
///  * `eta_plus(dt)`  — maximum number of activations in any half-open
///    time window of length `dt` (the paper's η⁺; the only η the analysis
///    needs, but η⁻ is provided for completeness and the simulator).
///  * `delta_minus(q)` — minimum distance between the first and the last
///    of any `q` consecutive activations (pseudo-inverse δ⁻).
///  * `delta_plus(q)`  — maximum such distance (δ⁺); `kTimeInfinity` for
///    sporadic models.
///
/// Convention (calibrated against the paper's own case-study numbers, see
/// DESIGN.md §2):   eta_plus(dt) = max{ q >= 0 | delta_minus(q) < dt },
/// with delta_minus(1) = 0.  For a periodic model with period P this gives
/// eta_plus(dt) = ceil(dt / P).

#ifndef WHARF_CORE_ARRIVAL_HPP
#define WHARF_CORE_ARRIVAL_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace wharf {

/// Arithmetic tail of a delta_minus curve: for every q >= `valid_from`,
///   delta_minus(q + block) == delta_minus(q) + span   (saturating).
/// Every library model is eventually arithmetic — periodic/sporadic
/// curves from q = 1, jitter curves once the period term dominates the
/// min-distance term, explicit curves beyond their prefix, bursts with
/// block = burst size — which is what lets ArrivalTable (arrival_table.hpp)
/// evaluate them via a dense prefix plus O(block) tail arithmetic.
struct ArrivalTailSpec {
  Count valid_from = 1;  ///< first q the recurrence holds from (>= 1)
  Count block = 1;       ///< recurrence stride in activations (>= 1)
  Time span = 1;         ///< distance gained per block (>= 1)
};

/// Abstract activation model (immutable; shared between chains).
class ArrivalModel {
 public:
  virtual ~ArrivalModel() = default;

  ArrivalModel(const ArrivalModel&) = delete;
  ArrivalModel& operator=(const ArrivalModel&) = delete;

  /// Maximum activations in any window of length `window`
  /// (0 for `window <= 0`; `kCountInfinity` for an infinite window).
  [[nodiscard]] virtual Count eta_plus(Time window) const = 0;

  /// Minimum activations in any window of length `window`.
  [[nodiscard]] virtual Count eta_minus(Time window) const = 0;

  /// Minimum distance spanned by `q` consecutive activations (0 for q <= 1).
  [[nodiscard]] virtual Time delta_minus(Count q) const = 0;

  /// Maximum distance spanned by `q` consecutive activations
  /// (0 for q <= 1; `kTimeInfinity` when unbounded, e.g. sporadic).
  [[nodiscard]] virtual Time delta_plus(Count q) const = 0;

  /// Long-run upper bound on the activation rate (events per tick), i.e.
  /// lim sup eta_plus(dt)/dt.  Used for utilization tests.
  [[nodiscard]] virtual double rate_upper() const = 0;

  /// The eventually-arithmetic structure of this model's delta_minus
  /// curve, if it has one (see ArrivalTailSpec).  Models returning
  /// nullopt are still analyzed correctly — ArrivalTable just falls back
  /// to virtual evaluation for them.  Every library model overrides this.
  [[nodiscard]] virtual std::optional<ArrivalTailSpec> tail_spec() const { return std::nullopt; }

  /// Canonical, parseable textual form (e.g. "periodic(200)"); `io::`
  /// serialization reuses this exact syntax.
  [[nodiscard]] virtual std::string describe() const = 0;

 protected:
  ArrivalModel() = default;
};

/// Shared immutable handle used throughout the model layer.
using ArrivalModelPtr = std::shared_ptr<const ArrivalModel>;

/// Strictly periodic activation with period `period >= 1`.
[[nodiscard]] ArrivalModelPtr periodic(Time period);

/// Periodic activation with release jitter: events nominally `period`
/// apart may be displaced by up to `jitter`, never closer than
/// `min_distance >= 1` ticks.  delta_plus is finite:
/// (q-1)*period + jitter.
[[nodiscard]] ArrivalModelPtr periodic_jitter(Time period, Time jitter, Time min_distance = 1);

/// Sporadic activation with minimum inter-arrival `min_distance >= 1`;
/// delta_plus is unbounded.
[[nodiscard]] ArrivalModelPtr sporadic(Time min_distance);

/// Sporadic activation defined by an explicit prefix of its
/// delta_minus curve: `prefix[i]` is delta_minus(i + 2), extended beyond
/// the prefix with slope `tail_period >= 1`:
///   delta_minus(q) = prefix.back() + (q - prefix.size() - 1) * tail_period.
/// `prefix` must be non-decreasing and non-negative.  This models the
/// paper's "rarely activated sporadic chains", whose short-window burst
/// behaviour (delta_minus(2)) is dense but whose long-window rate is low.
[[nodiscard]] ArrivalModelPtr delta_curve(std::vector<Time> prefix, Time tail_period);

/// Like delta_curve(), but with an explicit *upper* distance curve as
/// well: `plus_prefix[i]` is delta_plus(i + 2), extended with slope
/// `plus_tail`.  Needed when the model feeds Lemma 4 (a finite
/// delta_plus bounds the window of a k-sequence) — e.g. for the derived
/// output models of chains on a path.  Requires delta_plus >= delta_minus
/// pointwise and plus_tail >= tail_period.
[[nodiscard]] ArrivalModelPtr delta_curve_with_plus(std::vector<Time> prefix, Time tail_period,
                                                    std::vector<Time> plus_prefix,
                                                    Time plus_tail);

/// Sporadic bursts: at most `burst_size` activations per window of
/// `outer_period`, spaced at least `inner_distance` apart within a burst
/// (the classic ISR overload model of the TWCA literature):
///   delta_minus(q) = floor((q-1)/n) * P + ((q-1) mod n) * d.
/// Requires outer_period >= (burst_size - 1) * inner_distance; delta_plus
/// is unbounded (sporadic).
[[nodiscard]] ArrivalModelPtr sporadic_burst(Time outer_period, Count burst_size,
                                             Time inner_distance);

/// Parses the textual form produced by ArrivalModel::describe():
///   periodic(P) | periodic_jitter(P,J[,dmin]) | sporadic(dmin) |
///   curve(d2,d3,...;tail) | burst(P,n,d)
/// Throws wharf::InvalidArgument on syntax errors.
[[nodiscard]] ArrivalModelPtr parse_arrival(const std::string& spec);

}  // namespace wharf

#endif  // WHARF_CORE_ARRIVAL_HPP
