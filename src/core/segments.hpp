/// \file segments.hpp
/// Segments, active segments, header segments and critical segments
/// (paper Definitions 2–8).
///
/// These objects quantify how a chain σ_a interferes with an analyzed
/// chain σ_b under SPP:
///  * σ_a is *deferred* by σ_b when some task of σ_a has lower priority
///    than every task of σ_b (Def. 2) — execution of σ_a then stalls at
///    that task until σ_b's busy window closes.
///  * A *segment* of σ_a w.r.t. σ_b (Def. 3) is a maximal run of tasks of
///    σ_a all with priority above σ_b's minimum; identifiers are read
///    modulo n_a, so a segment may wrap from the tail to the header
///    (conservatively spanning two consecutive instances of σ_a).
///  * The *critical segment* (Def. 4) is the segment of maximum total
///    execution time.
///  * The *header segment* (Def. 5) is the prefix of σ_a that can run
///    before σ_a first reaches a task of lower priority (than σ_a's own
///    minimum, or than σ_b's minimum for the "w.r.t. σ_b" variant).
///  * An *active segment* (Def. 8) is a maximal subchain of a segment in
///    which every task except possibly the first has priority above the
///    priority of σ_b's tail task; its execution cannot span more than
///    one σ_b-busy-window (Lemma 2).  Active segments never wrap
///    (footnote 3 of the paper).

#ifndef WHARF_CORE_SEGMENTS_HPP
#define WHARF_CORE_SEGMENTS_HPP

#include <optional>
#include <string>
#include <vector>

#include "core/chain.hpp"

namespace wharf {

/// A (possibly wrapping) run of consecutive tasks of a chain.
struct Segment {
  /// Task indices of chain σ_a in execution order; when `wraps` is true
  /// the list crosses the n_a -> 1 boundary (e.g. {3, 0, 1}).
  std::vector<int> tasks;
  bool wraps = false;
  /// Sum of the WCETs of `tasks` (the paper's C_s).
  Time cost = 0;
};

/// A non-wrapping subchain of a segment whose execution fits into one
/// σ_b-busy-window (Def. 8 / Lemma 2).
struct ActiveSegment {
  /// Index into the segments_wrt() result identifying the parent segment.
  /// Active segments may be combined within one busy window if and only
  /// if they share this parent (Def. 9 / Lemma 1).
  int segment_index = -1;
  std::vector<int> tasks;
  Time cost = 0;
};

/// Def. 2: true iff σ_a is deferred by σ_b (some task of `a` has lower
/// priority than all tasks of `b`); otherwise σ_a arbitrarily interferes.
[[nodiscard]] bool is_deferred(const Chain& a, const Chain& b);

/// Def. 3: all segments of `a` w.r.t. `b`, in chain order (a wrapping
/// segment, if any, is listed where its first task lies).  Empty when no
/// task of `a` exceeds `b`'s minimum priority.  When *all* tasks qualify,
/// the single segment is the whole chain (no wrap).
[[nodiscard]] std::vector<Segment> segments_wrt(const Chain& a, const Chain& b);

/// Def. 4: the segment maximizing total execution time (first such on
/// ties); std::nullopt when there are no segments.
[[nodiscard]] std::optional<Segment> critical_segment(const Chain& a, const Chain& b);

/// Def. 5 (first bullet): task indices of s_header_a — the prefix of `a`
/// before its own lowest-priority task.  Empty when the header task is
/// the lowest-priority task.
[[nodiscard]] std::vector<int> header_subchain(const Chain& a);

/// Def. 5 (second bullet): task indices of s_header_{a,b} — the prefix of
/// `a` before the first task with priority lower than all tasks of `b`.
/// Precondition: `a` is deferred by `b`.
[[nodiscard]] std::vector<int> header_segment_wrt(const Chain& a, const Chain& b);

/// Def. 8: all active segments of `a` w.r.t. `b`, in chain order.  Active
/// segments partition each segment (wrapping segments are split at the
/// wrap point first, per footnote 3).
[[nodiscard]] std::vector<ActiveSegment> active_segments_wrt(const Chain& a, const Chain& b);

/// Sum of the WCETs of the given task indices of chain `a`.
[[nodiscard]] Time cost_of(const Chain& a, const std::vector<int>& task_indices);

/// Pretty "(tau1,tau2)" rendering of a task-index list (for reports).
[[nodiscard]] std::string format_task_list(const Chain& a, const std::vector<int>& task_indices);

}  // namespace wharf

#endif  // WHARF_CORE_SEGMENTS_HPP
