#include "core/system.hpp"

#include <unordered_map>
#include <unordered_set>

#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf {

System::System(std::string name, std::vector<Chain> chains)
    : name_(std::move(name)), chains_(std::move(chains)) {
  WHARF_EXPECT(!name_.empty(), "system name must not be empty");
  WHARF_EXPECT(!chains_.empty(), "system must contain at least one chain");

  std::unordered_set<std::string> chain_names;
  std::unordered_map<Priority, std::string> priority_owner;
  for (int c = 0; c < size(); ++c) {
    const Chain& chain = chains_[static_cast<std::size_t>(c)];
    WHARF_EXPECT(chain_names.insert(chain.name()).second,
                 "duplicate chain name '" << chain.name() << "'");
    for (const Task& t : chain.tasks()) {
      auto [it, inserted] = priority_owner.emplace(t.priority, t.name);
      WHARF_EXPECT(inserted, "duplicate priority " << t.priority << " on tasks '" << it->second
                                                   << "' and '" << t.name
                                                   << "' (the paper assumes a total priority "
                                                      "order; see DESIGN.md)");
    }
    task_count_ += chain.size();
    (chain.is_overload() ? overload_indices_ : regular_indices_).push_back(c);
  }
}

std::optional<int> System::chain_index(const std::string& chain_name) const {
  for (int c = 0; c < size(); ++c) {
    if (chain(c).name() == chain_name) return c;
  }
  return std::nullopt;
}

double System::utilization() const {
  double u = 0.0;
  for (const Chain& c : chains_) {
    u += static_cast<double>(c.total_wcet()) * c.arrival().rate_upper();
  }
  return u;
}

std::vector<Priority> System::flat_priorities() const {
  std::vector<Priority> out;
  out.reserve(static_cast<std::size_t>(task_count_));
  for (const Chain& c : chains_) {
    for (const Task& t : c.tasks()) out.push_back(t.priority);
  }
  return out;
}

System System::with_priorities(const std::vector<Priority>& priorities) const {
  WHARF_EXPECT(priorities.size() == static_cast<std::size_t>(task_count_),
               "expected " << task_count_ << " priorities, got " << priorities.size());
  std::vector<Chain> new_chains;
  new_chains.reserve(chains_.size());
  std::size_t next = 0;
  for (const Chain& c : chains_) {
    Chain::Spec spec;
    spec.name = c.name();
    spec.kind = c.kind();
    spec.arrival = c.arrival_ptr();
    spec.deadline = c.deadline();
    spec.overload = c.is_overload();
    spec.tasks = c.tasks();
    for (Task& t : spec.tasks) t.priority = priorities[next++];
    new_chains.emplace_back(std::move(spec));
  }
  return System(name_, std::move(new_chains));
}

System System::with_deadline(int chain, std::optional<Time> deadline) const {
  WHARF_EXPECT(chain >= 0 && chain < size(),
               "chain index " << chain << " out of range [0, " << size() << ")");
  std::vector<Chain> new_chains;
  new_chains.reserve(chains_.size());
  for (int c = 0; c < size(); ++c) {
    const Chain& current = chains_[static_cast<std::size_t>(c)];
    Chain::Spec spec;
    spec.name = current.name();
    spec.kind = current.kind();
    spec.arrival = current.arrival_ptr();
    spec.deadline = c == chain ? deadline : current.deadline();
    spec.overload = current.is_overload();
    spec.tasks = current.tasks();
    new_chains.emplace_back(std::move(spec));
  }
  return System(name_, std::move(new_chains));
}

std::optional<TaskRef> System::find_task(const std::string& dotted) const {
  const auto dot = dotted.find('.');
  if (dot == std::string::npos) return std::nullopt;
  const std::string chain_part = dotted.substr(0, dot);
  const std::string task_part = dotted.substr(dot + 1);
  const auto c = chain_index(chain_part);
  if (!c.has_value()) return std::nullopt;
  const Chain& ch = chain(*c);
  for (int t = 0; t < ch.size(); ++t) {
    if (ch.task(t).name == task_part) return TaskRef{*c, t};
  }
  return std::nullopt;
}

}  // namespace wharf
