#include "core/dmm_curve.hpp"

#include "util/expect.hpp"

namespace wharf {

std::vector<DmmBreakpoint> dmm_breakpoints(const TwcaAnalyzer& analyzer, int chain, Count k_max) {
  WHARF_EXPECT(k_max >= 1, "k_max must be >= 1, got " << k_max);
  std::vector<DmmBreakpoint> out;
  Count k = 1;
  Count current = analyzer.dmm(chain, 1).dmm;
  out.push_back(DmmBreakpoint{1, current});

  const Count at_max = analyzer.dmm(chain, k_max).dmm;
  while (current < at_max) {
    // Find the smallest k' in (k, k_max] with dmm(k') > current.
    Count lo = k + 1;
    Count hi = k_max;
    while (lo < hi) {
      const Count mid = lo + (hi - lo) / 2;
      if (analyzer.dmm(chain, mid).dmm > current) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    k = lo;
    current = analyzer.dmm(chain, k).dmm;
    out.push_back(DmmBreakpoint{k, current});
  }
  return out;
}

Count max_window_for_misses(const TwcaAnalyzer& analyzer, int chain, Count m, Count k_max) {
  WHARF_EXPECT(m >= 0, "m must be >= 0, got " << m);
  WHARF_EXPECT(k_max >= 1, "k_max must be >= 1, got " << k_max);
  if (analyzer.dmm(chain, 1).dmm > m) return 0;
  if (analyzer.dmm(chain, k_max).dmm <= m) return k_max;
  // Largest k with dmm(k) <= m: binary search on the monotone curve.
  Count lo = 1;          // dmm(lo) <= m
  Count hi = k_max;      // dmm(hi) > m
  while (lo + 1 < hi) {
    const Count mid = lo + (hi - lo) / 2;
    if (analyzer.dmm(chain, mid).dmm <= m) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace wharf
