/// \file task.hpp
/// A single task of a task chain.

#ifndef WHARF_CORE_TASK_HPP
#define WHARF_CORE_TASK_HPP

#include <string>

#include "util/types.hpp"

namespace wharf {

/// One task τ of a chain: a name, an arbitrary static priority π (larger
/// value = higher priority, globally unique within a System) and an upper
/// bound C on its execution time (the paper takes 0 as the lower bound).
struct Task {
  std::string name;
  Priority priority = 0;
  Time wcet = 0;
};

}  // namespace wharf

#endif  // WHARF_CORE_TASK_HPP
