/// \file case_studies.hpp
/// The systems used in the paper, built in code so tests, examples and
/// benchmarks share one source of truth.

#ifndef WHARF_CORE_CASE_STUDIES_HPP
#define WHARF_CORE_CASE_STUDIES_HPP

#include "core/system.hpp"

namespace wharf::case_studies {

/// Figure 1 of the paper: two chains used to illustrate segments and
/// active segments.
///   σ_a = (τ1a/7, τ2a/9, τ3a/5, τ4a/2, τ5a/4, τ6a/1)
///   σ_b = (τ1b/8, τ2b/3, τ3b/6)
/// (name/priority; the paper gives no WCETs or activation models here, so
/// each task gets WCET 1 and each chain periodic(100) — the in-text
/// examples depend only on the priority structure).
///
/// Expected structure (paper, Section IV/V examples):
///   segments of σ_a w.r.t. σ_b:        (τ1a,τ2a,τ3a), (τ5a)
///   active segments of σ_a w.r.t. σ_b: (τ1a,τ2a), (τ3a), (τ5a)
///   valid combinations of σ_a's active segments: 4
[[nodiscard]] System figure1_system();

/// Chain indices of figure1_system().
inline constexpr int kFig1SigmaA = 0;
inline constexpr int kFig1SigmaB = 1;

/// Arrival model used for the sporadic overload chains of the Figure 4
/// case study.
enum class OverloadModel {
  /// Take Figure 4 literally: sporadic with min inter-arrival 700 (σa)
  /// and 600 (σb).  Reproduces Table I and dmm_c(3)=3 of Table II, but
  /// not the long-horizon Table II entries (no pure sporadic curve can —
  /// see EXPERIMENTS.md).
  kLiteralSporadic,
  /// "Rarely activated" overload: delta-curve with delta_minus(2) as in
  /// Figure 4, delta_minus(3)=15200, delta_minus(4)=50000, tail 35000 —
  /// calibrated so *all* of Table II is matched exactly, including the
  /// dmm breakpoints at k=76 and k=250.  Under the breakpoint reading of
  /// Table II (k=76/250 are the first k at each dmm level), the paper
  /// pins the (unpublished) industrial curve into intervals of width
  /// 200: delta_minus(3) in [15131, 15331), delta_minus(4) in
  /// [49931, 50131); see bench_sensitivity.
  kRareOverload,
};

/// Figure 4 of the paper: the Thales-derived industrial case study.
/// Chains (in figure order): σd, σc periodic [δ⁻(2)=200, D=200]; σb, σa
/// sporadic overload chains; all chains synchronous; priorities 1..13.
[[nodiscard]] System date17_case_study(OverloadModel model = OverloadModel::kLiteralSporadic);

/// Chain indices of date17_case_study().
inline constexpr int kSigmaD = 0;
inline constexpr int kSigmaC = 1;
inline constexpr int kSigmaB = 2;
inline constexpr int kSigmaA = 3;

}  // namespace wharf::case_studies

#endif  // WHARF_CORE_CASE_STUDIES_HPP
