#include "core/chain.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/expect.hpp"

namespace wharf {

std::string to_string(ChainKind kind) {
  return kind == ChainKind::kSynchronous ? "synchronous" : "asynchronous";
}

Chain::Chain(Spec spec)
    : name_(std::move(spec.name)),
      kind_(spec.kind),
      arrival_(std::move(spec.arrival)),
      deadline_(spec.deadline),
      overload_(spec.overload),
      tasks_(std::move(spec.tasks)) {
  WHARF_EXPECT(!name_.empty(), "chain name must not be empty");
  WHARF_EXPECT(arrival_ != nullptr, "chain '" << name_ << "' needs an arrival model");
  WHARF_EXPECT(!tasks_.empty(), "chain '" << name_ << "' must contain at least one task");
  if (deadline_.has_value()) {
    WHARF_EXPECT(*deadline_ >= 1,
                 "chain '" << name_ << "' deadline must be >= 1, got " << *deadline_);
  }
  WHARF_EXPECT(!overload_ || kind_ == ChainKind::kSynchronous,
               "overload chain '" << name_
                                  << "' must be synchronous (the paper treats overload chains "
                                     "as synchronous WLOG; see DESIGN.md)");

  std::unordered_set<std::string> names;
  for (const Task& t : tasks_) {
    WHARF_EXPECT(!t.name.empty(), "task of chain '" << name_ << "' has an empty name");
    WHARF_EXPECT(names.insert(t.name).second,
                 "duplicate task name '" << t.name << "' in chain '" << name_ << "'");
    WHARF_EXPECT(t.wcet >= 0, "task '" << t.name << "' has negative WCET " << t.wcet);
    total_wcet_ = sat_add(total_wcet_, t.wcet);
  }

  lowest_priority_index_ = 0;
  for (int i = 1; i < size(); ++i) {
    if (task(i).priority < task(lowest_priority_index_).priority) lowest_priority_index_ = i;
  }
  min_priority_ = task(lowest_priority_index_).priority;
}

}  // namespace wharf
