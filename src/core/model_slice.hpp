/// \file model_slice.hpp
/// Canonical content encodings of the model slices each analysis stage
/// reads — the substrate of artifact-granular caching.
///
/// The TWCA pipeline is staged: interference/segment structure (Defs
/// 2–5) → busy windows (Thm 1/2) → overload structures + unschedulable
/// combinations (Defs 8/9, Eq. 5) → dmm(k) (Thm 3) → combination-packing
/// ILP.  Each stage's result is a pure function of a *slice* of the
/// system model, usually much smaller than the whole system:
///
///  * the busy window of target σ_b reads σ_b in full, but of every
///    other chain σ_a only a derived interference summary — the
///    deferred/arbitrary classification and a handful of segment costs
///    (Eq. 1 never looks at σ_a's raw priorities, only at comparisons
///    against σ_b's minimum priority);
///  * the overload structure additionally reads the active segments of
///    overload chains w.r.t. σ_b;
///  * the packing ILP reads nothing but capacities and item-resource
///    incidence.
///
/// The functions here serialize exactly those read sets into canonical
/// strings.  Two systems with equal slices provably yield bit-identical
/// stage results, so the strings are sound cache keys: tweaking one
/// chain's priority invalidates only the targets whose slices actually
/// change (typically the mutated chain itself), not the whole system.
///
/// Caveat (shared with io::serialize_system): arrival models are encoded
/// via ArrivalModel::describe(), which is a faithful content encoding
/// for every library model but relies on user-defined models describing
/// themselves uniquely.

#ifndef WHARF_CORE_MODEL_SLICE_HPP
#define WHARF_CORE_MODEL_SLICE_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/system.hpp"
#include "core/twca.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace wharf {

/// Append-only intern table mapping key *fragments* (the slice strings
/// the key builders below compose) to dense 32-bit ids.  With an
/// interner, a cache key is a flat sequence of 4-byte little-endian ids
/// instead of the concatenated fragment text — typically 10-30x shorter,
/// which shrinks store memory, key-hash cost on the in-memory lookup
/// path, and the persistent snapshot (store_persist.hpp serializes keys
/// as file-local ids plus one shared fragment table).
///
/// Ids are assigned in first-intern order and never change or disappear,
/// so a key built earlier in the process compares byte-equal to the same
/// key built later — the store-key soundness argument of the textual
/// builders carries over verbatim (equal fragment sequences ⇔ equal id
/// sequences).  Thread-safe; `fragment()` references are stable for the
/// interner's lifetime.
class KeyInterner {
 public:
  /// Bytes one encoded id occupies inside a key string.
  static constexpr std::size_t kIdBytes = 4;

  /// Id of `piece`, interning it first if unseen.
  [[nodiscard]] std::uint32_t intern(std::string_view piece);

  /// The fragment text behind `id` (stable reference).  Throws
  /// std::out_of_range for ids never handed out.
  [[nodiscard]] const std::string& fragment(std::uint32_t id) const;

  /// Number of distinct fragments interned so far (ids are 0..size-1).
  [[nodiscard]] std::size_t size() const;

  /// Appends `id` to `out` as 4 little-endian bytes.
  static void append_id(std::string& out, std::uint32_t id);

  /// Decodes one 4-byte little-endian id starting at `bytes`.
  [[nodiscard]] static std::uint32_t read_id(const char* bytes);

 private:
  mutable util::Mutex mutex_;
  // deque: stable element addresses under append, so fragment() refs and
  // the string_view map keys survive growth.
  std::deque<std::string> fragments_ WHARF_GUARDED_BY(mutex_);
  std::unordered_map<std::string_view, std::uint32_t> index_ WHARF_GUARDED_BY(mutex_);
};

/// Cross-candidate memo of serialized per-chain slice strings — the
/// floor of the warm design-space path on µs-cheap systems is key
/// serialization, and most of a key is per-chain slices that a priority
/// delta does not touch.
///
/// Entries are keyed by the *per-chain priority sub-vector* (plus, for
/// pairwise slices, the target's minimum priority — the only thing a
/// slice reads about the target's priorities): two candidate systems
/// whose chain `a` carries the same priorities produce byte-identical
/// slices of `a`, so a delta (or a pairwise-swap neighborhood) that
/// leaves a chain's sub-vector untouched reuses its serialized slice
/// instead of re-walking the segment structure.
///
/// Soundness contract: every System used against one cache (between
/// invalidate() calls) must agree on all *structural* content — chain
/// count and order, names, kinds, arrival models, WCETs, deadlines,
/// overload flags — and differ at most in task priorities.  Priority
/// deltas need no invalidation (the sub-vector is in the key); a
/// structural delta must call invalidate() first — or, when other
/// holders may still key the old structure against the shared cache,
/// detach by replacing it with a fresh one (what wharf::Session does,
/// so live speculative sessions keep a consistent old-structure memo).
/// search::PipelineEvaluator satisfies the contract by construction
/// (candidates are priority permutations of one base).
///
/// Thread-safe; returned references are stable until invalidate().
class SliceCache {
 public:
  struct Stats {
    std::size_t hits = 0;    ///< slices served from the memo
    std::size_t misses = 0;  ///< slices serialized afresh
  };

  /// Drops every entry (call before keying a structurally changed
  /// system).  Must not race with concurrent slice accessors.
  void invalidate();

  [[nodiscard]] Stats stats() const;

  /// Memoized equivalents of the free slice functions below (byte-
  /// identical output, so cached and uncached key builds collide on the
  /// same store artifacts).
  [[nodiscard]] const std::string& chain_content(const System& system, int chain);
  [[nodiscard]] const std::string& interference_slice(const System& system, int a, int b);
  [[nodiscard]] const std::string& busy_interference_slice(const System& system, int a, int b);
  [[nodiscard]] const std::string& overload_slice(const System& system, int a, int b);

 private:
  enum class Kind : char {
    kContent = 'c',
    kInterference = 'i',
    kBusyInterference = 'b',
    kOverload = 'o',
  };

  const std::string& acquire(Kind kind, const System& system, int a, int b);

  mutable util::Mutex mutex_;
  std::unordered_map<std::string, std::string> entries_ WHARF_GUARDED_BY(mutex_);
  Stats stats_ WHARF_GUARDED_BY(mutex_);
};

/// Full canonical encoding of one chain (name, kind, arrival curve,
/// deadline, overload flag, per-task priorities and WCETs).  This is the
/// target side of every per-target slice.
[[nodiscard]] std::string chain_content(const Chain& chain);

/// What the interference-context stage (Defs 2–5) reads about chain `a`
/// w.r.t. target `b`: per-task WCETs plus the comparison of each task's
/// priority against b's minimum priority (priorities are globally
/// unique, so one boolean per task captures every comparison Defs 2–5
/// make).
[[nodiscard]] std::string interference_slice(const Chain& a, const Chain& b);

/// What the busy-window fixed point (Eq. 1/3/4) reads about interferer
/// `a` w.r.t. target `b`: arrival curve, total WCET, kind, and — when
/// `a` is deferred — the derived header/segment/critical costs.  Raw
/// priorities never appear: an interferer whose derived summary is
/// unchanged cannot change the fixed point.
[[nodiscard]] std::string busy_interference_slice(const Chain& a, const Chain& b);

/// What the overload-structure/combination stage (Defs 8/9) reads about
/// overload chain `a` w.r.t. target `b`: the arrival curve (Lemma 4's
/// Ω term) and the active segments (parent segment and cost each).
[[nodiscard]] std::string overload_slice(const Chain& a, const Chain& b);

/// Canonical encoding of the analysis knobs that change busy-window
/// results (caps, divergence guard, naive-arbitrary ablation).
[[nodiscard]] std::string analysis_options_slice(const AnalysisOptions& options);

/// Canonical encoding of the TWCA knobs that change k-independent
/// combination artifacts (criterion, enumeration cap, minimality).
[[nodiscard]] std::string combination_options_slice(const TwcaOptions& options);

/// Cache key of the interference context of `target`.  Pins the target
/// and interferer *positions* in addition to their content: the cached
/// context embeds absolute chain indices that consumers dereference
/// against the current system.  A non-null `slices` memoizes the
/// per-chain parts (byte-identical output).  A non-null `interner`
/// switches the key to the compact interned-id encoding: the same
/// fragment decomposition, one 4-byte little-endian id per fragment (a
/// store must be keyed consistently with or without an interner — the
/// two encodings are distinct key spaces).
[[nodiscard]] std::string interference_key(const System& system, int target,
                                           SliceCache* slices = nullptr,
                                           KeyInterner* interner = nullptr);

/// Cache key of the busy-window/latency stage of `target`.  When
/// `without_overload` is set, overload chains are excluded from the walk
/// (the paper's "second analysis"), so their slices do not taint the key
/// and overload-model changes cannot invalidate it.  A non-null `slices`
/// memoizes the per-chain parts (byte-identical output); a non-null
/// `interner` selects the compact interned-id encoding.
[[nodiscard]] std::string busy_window_key(const System& system, int target,
                                          const AnalysisOptions& options,
                                          bool without_overload,
                                          SliceCache* slices = nullptr,
                                          KeyInterner* interner = nullptr);

/// Cache key of the k-independent overload artifacts of `target` (slack,
/// overload structure, unschedulable combinations, Thm 3 preconditions).
/// Pins the target's and each overload chain's position (the cached
/// OverloadStructure embeds absolute indices).
[[nodiscard]] std::string overload_key(const System& system, int target,
                                       const TwcaOptions& options);

/// Composing variant: `busy_window_part` must be
/// busy_window_key(system, target, options.analysis, false).  The keys
/// nest (dmm ⊃ overload ⊃ busy window), so callers that key several
/// stages for one target — the Engine pipeline's per-request key cache —
/// build the expensive shared part once instead of per stage.  A
/// non-null `slices` memoizes the per-chain parts; a non-null `interner`
/// selects the compact interned-id encoding (`busy_window_part` must
/// then be interned too — it is embedded verbatim).
[[nodiscard]] std::string overload_key(const System& system, int target,
                                       const TwcaOptions& options,
                                       const std::string& busy_window_part,
                                       SliceCache* slices = nullptr,
                                       KeyInterner* interner = nullptr);

/// Cache key of one dmm(k) query result for `target`.
[[nodiscard]] std::string dmm_key(const System& system, int target, Count k,
                                  const TwcaOptions& options);

/// Composing variant: `overload_part` must be
/// overload_key(system, target, options) for the queried target, built
/// with the same `interner` (or none).
[[nodiscard]] std::string dmm_key(Count k, const TwcaOptions& options,
                                  const std::string& overload_part,
                                  KeyInterner* interner = nullptr);

}  // namespace wharf

#endif  // WHARF_CORE_MODEL_SLICE_HPP
