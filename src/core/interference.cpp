#include "core/interference.hpp"

#include "util/expect.hpp"

namespace wharf {

InterferenceContext make_interference_context(const System& system, int target) {
  WHARF_EXPECT(target >= 0 && target < system.size(),
               "chain index " << target << " out of range [0, " << system.size() << ")");
  InterferenceContext ctx;
  ctx.target = target;
  const Chain& b = system.chain(target);
  ctx.self_header = header_subchain(b);
  ctx.self_header_cost = cost_of(b, ctx.self_header);
  ctx.self_table = std::make_shared<const ArrivalTable>(b.arrival_ptr());

  for (int a = 0; a < system.size(); ++a) {
    if (a == target) continue;
    const Chain& chain_a = system.chain(a);
    ChainInterference info;
    info.chain = a;
    info.table = std::make_shared<const ArrivalTable>(chain_a.arrival_ptr());
    info.deferred = is_deferred(chain_a, b);
    if (info.deferred) {
      info.segments = segments_wrt(chain_a, b);
      info.critical = critical_segment(chain_a, b);
      info.header_segment = header_segment_wrt(chain_a, b);
      info.header_segment_cost = cost_of(chain_a, info.header_segment);
      for (const Segment& s : info.segments) {
        info.segments_total_cost = sat_add(info.segments_total_cost, s.cost);
      }
    }
    ctx.others.push_back(std::move(info));
  }
  return ctx;
}

}  // namespace wharf
