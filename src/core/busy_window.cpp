/// \file busy_window.cpp
/// Data-oriented busy-window kernel (PR 7).
///
/// The public semantics are unchanged from the pre-flattening
/// implementation (preserved in busy_window_reference.cpp as the
/// bit-identity oracle); what changed is how the Eq. (1) right-hand side
/// is evaluated:
///  * every interfering chain is flattened once per analysis into an
///    InterfererRow — a handful of scalars plus a pointer to its flat
///    ArrivalTable — so the fixed-point loop is a branch-light scan over
///    a contiguous array with no virtual dispatch and no per-iteration
///    exclude-list lookups;
///  * the K_b search warm-starts each q's Kleene iteration at B(q-1):
///    Eq. (1)'s rhs is pointwise nondecreasing in q (the self term drops
///    by at most C_header <= C_b per activation), so B(q) >= B(q-1) and
///    iterating from max(q*C_b, B(q-1)) reaches the same least fixed
///    point in far fewer steps;
///  * BusyTimeTerm labels are rendered lazily (BusyTimeTerm::label) —
///    the analysis allocates no diagnostic strings.
/// The kernel itself allocates only at construction (the row array);
/// every fixed-point iteration is allocation-free.

#include "core/busy_window.hpp"

#include <algorithm>

#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf {

namespace {

/// One interfering chain of Eq. (1)/(3)/(4), flattened to the scalars
/// the kernel loop reads:
///  * arbitrarily interfering (or naive): eta x C_a          (has_eta)
///  * deferred async: eta x C_header + sum of segment costs  (has_eta)
///  * deferred sync:  critical-segment cost only             (!has_eta)
struct InterfererRow {
  int chain = -1;            ///< index of sigma_a in the system
  bool has_eta = false;      ///< the term contains an eta+ factor
  bool deferred = false;     ///< Def. 2 classification (for labels)
  bool overload = false;     ///< skipped by the typical bound (Eq. 4)
  Time unit_cost = 0;        ///< multiplied by eta+(window)
  Time constant_cost = 0;    ///< window-independent part
  const ArrivalTable* table = nullptr;  ///< flat curve (null: hand-built ctx)
  const ArrivalModel* model = nullptr;  ///< virtual fallback (never null)
};

/// eta+ of a row through its flat table when present (bit-identical to
/// the model; see arrival_table.hpp).
Count row_eta(const InterfererRow& row, Time window) {
  return row.table != nullptr ? row.table->eta_plus(window) : row.model->eta_plus(window);
}

/// Flat evaluator of the Eq. (1)/(3)/(4) right-hand sides for one
/// (target, exclude set) pair.  Built once per analysis; all hot-path
/// methods are allocation-free.  Borrows the context and options — both
/// must outlive the kernel (they do: kernels are function-local).
class BusyWindowKernel {
 public:
  BusyWindowKernel(const System& system, const InterferenceContext& ctx,
                   const AnalysisOptions& options, const std::vector<int>& exclude)
      : options_(options), target_(ctx.target) {
    const Chain& b = system.chain(ctx.target);
    target_cost_ = b.total_wcet();
    self_model_ = &b.arrival();
    self_table_ = ctx.self_table.get();
    // A zero cost disables the self term, exactly like the synchronous /
    // empty-header cases of self_interference() in the reference path.
    self_header_cost_ = b.is_asynchronous() ? ctx.self_header_cost : 0;
    rows_.reserve(ctx.others.size());
    for (const ChainInterference& info : ctx.others) {
      if (std::find(exclude.begin(), exclude.end(), info.chain) != exclude.end()) continue;
      const Chain& a = system.chain(info.chain);
      InterfererRow row;
      row.chain = info.chain;
      row.deferred = info.deferred;
      row.overload = a.is_overload();
      row.table = info.table.get();
      row.model = &a.arrival();
      if (options.naive_arbitrary || !info.deferred) {
        row.has_eta = true;
        row.unit_cost = a.total_wcet();
      } else if (a.is_asynchronous()) {
        row.has_eta = true;
        row.unit_cost = info.header_segment_cost;
        row.constant_cost = info.segments_total_cost;
      } else {
        row.constant_cost = info.critical ? info.critical->cost : 0;
      }
      rows_.push_back(row);
    }
  }

  /// Right-hand side of Eq. (1) at busy-time guess `window`
  /// (`skip_overload` additionally drops overload chains — Eq. (4)).
  [[nodiscard]] Time rhs(Count q, Time window, bool skip_overload = false) const {
    Time total = sat_mul(q, target_cost_);
    total = sat_add(total, self_term(q, window));
    for (const InterfererRow& row : rows_) {
      if (skip_overload && row.overload) continue;
      total = sat_add(total, term_of(row, window));
    }
    return total;
  }

  /// Least fixed point of rhs(q, .) + extra_constant, Kleene-iterated
  /// from max(q*C_b + extra_constant, warm_start).  Pass warm_start 0
  /// for the reference-identical cold start, or B(q-1) to warm-start
  /// the K_b search (same fixed point, fewer iterations — see the file
  /// comment).  nullopt on divergence (guard or iteration cap).
  [[nodiscard]] std::optional<Time> fixed_point(Count q, Time warm_start,
                                               Time extra_constant = 0) const {
    Time current = std::max(sat_add(sat_mul(q, target_cost_), extra_constant), warm_start);
    for (int iter = 0; iter < options_.max_fixed_point_iterations; ++iter) {
      const Time next = sat_add(rhs(q, current), extra_constant);
      if (next >= options_.divergence_guard || is_infinite(next)) return std::nullopt;
      if (next == current) return current;
      WHARF_ASSERT(next > current);  // monotone iteration
      current = next;
    }
    return std::nullopt;  // iteration cap: treat as divergent
  }

  /// delta_minus of the analyzed chain (flat table when available).
  [[nodiscard]] Time self_delta_minus(Count q) const {
    return self_table_ != nullptr ? self_table_->delta_minus(q) : self_model_->delta_minus(q);
  }

  /// Itemization of rhs(q, busy) as structured terms (zero amounts are
  /// skipped, like the reference breakdown).
  [[nodiscard]] std::vector<BusyTimeTerm> breakdown(Count q, Time busy) const {
    std::vector<BusyTimeTerm> terms;
    terms.push_back(
        BusyTimeTerm{BusyTimeTerm::Kind::kDemand, target_, q, sat_mul(q, target_cost_)});
    const Time self = self_term(q, busy);
    if (self > 0) {
      terms.push_back(BusyTimeTerm{BusyTimeTerm::Kind::kSelfHeader, target_, q, self});
    }
    for (const InterfererRow& row : rows_) {
      const Time amount = term_of(row, busy);
      if (amount == 0) continue;
      BusyTimeTerm::Kind kind = BusyTimeTerm::Kind::kArbitrary;
      if (!options_.naive_arbitrary && row.deferred) {
        kind = row.has_eta ? BusyTimeTerm::Kind::kDeferredAsync
                           : BusyTimeTerm::Kind::kDeferredSync;
      }
      terms.push_back(BusyTimeTerm{kind, row.chain, q, amount});
    }
    return terms;
  }

 private:
  /// Self-interference of an asynchronous analyzed chain (2nd line of
  /// Eq. 1): activations beyond the q under analysis may run up to the
  /// chain's own header subchain before stalling at its lowest-priority
  /// task.
  [[nodiscard]] Time self_term(Count q, Time window) const {
    if (self_header_cost_ == 0) return 0;
    const Count eta =
        self_table_ != nullptr ? self_table_->eta_plus(window) : self_model_->eta_plus(window);
    if (eta == kCountInfinity) return kTimeInfinity;
    const Count extra = std::max<Count>(0, eta - q);
    return sat_mul(extra, self_header_cost_);
  }

  /// One row's contribution at `window`.  An unbounded eta makes the
  /// term infinite regardless of cost, matching the reference path.
  [[nodiscard]] static Time term_of(const InterfererRow& row, Time window) {
    if (!row.has_eta) return row.constant_cost;
    const Count eta = row_eta(row, window);
    if (eta == kCountInfinity) return kTimeInfinity;
    return sat_add(sat_mul(eta, row.unit_cost), row.constant_cost);
  }

  const AnalysisOptions& options_;
  int target_;
  Time target_cost_ = 0;
  Time self_header_cost_ = 0;
  const ArrivalTable* self_table_ = nullptr;
  const ArrivalModel* self_model_ = nullptr;
  std::vector<InterfererRow> rows_;
};

/// The K_b search of Theorem 2 + Lemma 3 over a prebuilt kernel, with
/// warm-started fixed points.
LatencyResult run_latency_search(const BusyWindowKernel& kernel, const Chain& b,
                                 const AnalysisOptions& options) {
  LatencyResult result;
  result.wcl = 0;
  result.worst_q = 0;

  Count misses = 0;
  Time warm = 0;
  for (Count q = 1; q <= options.max_busy_windows; ++q) {
    const std::optional<Time> bq = kernel.fixed_point(q, warm);
    if (!bq.has_value()) {
      result.bounded = false;
      result.reason = util::cat("busy-time fixed point diverged at q=", q,
                                " (processor overloaded or guard exceeded)");
      return result;
    }
    warm = *bq;
    result.busy_times.push_back(*bq);

    const Time latency = *bq - kernel.self_delta_minus(q);
    if (latency > result.wcl || result.worst_q == 0) {
      result.wcl = latency;
      result.worst_q = q;
    }
    if (b.deadline().has_value() && latency > *b.deadline()) ++misses;

    if (*bq <= kernel.self_delta_minus(q + 1)) {
      result.K = q;
      result.bounded = true;
      if (b.deadline().has_value()) {
        result.misses_per_window = misses;
        result.schedulable = result.wcl <= *b.deadline();
      }
      return result;
    }
  }
  result.bounded = false;
  result.reason = util::cat("no maximal busy window within ", options.max_busy_windows,
                            " activations (K_b search cap)");
  return result;
}

}  // namespace

std::string BusyTimeTerm::label(const System& system) const {
  const std::string& name = system.chain(chain).name();
  switch (kind) {
    case Kind::kDemand:
      return util::cat(q, " x C_", name, " (demand)");
    case Kind::kSelfHeader:
      return util::cat(name, " header pile-up (async self)");
    case Kind::kArbitrary:
      return util::cat(name, " — arbitrary interference");
    case Kind::kDeferredAsync:
      return util::cat(name, " — deferred async (header pile-up + one per segment)");
    case Kind::kDeferredSync:
      return util::cat(name, " — deferred sync (critical segment)");
  }
  return {};
}

std::optional<Time> busy_time(const System& system, const InterferenceContext& ctx, Count q,
                              const AnalysisOptions& options, const std::vector<int>& exclude) {
  WHARF_EXPECT(q >= 1, "busy_time requires q >= 1, got " << q);
  const BusyWindowKernel kernel(system, ctx, options, exclude);
  return kernel.fixed_point(q, 0);
}

std::vector<BusyTimeTerm> busy_time_breakdown(const System& system,
                                              const InterferenceContext& ctx, Count q, Time busy,
                                              const AnalysisOptions& options,
                                              const std::vector<int>& exclude) {
  const BusyWindowKernel kernel(system, ctx, options, exclude);
  return kernel.breakdown(q, busy);
}

LatencyResult latency_analysis(const System& system, int target, const AnalysisOptions& options,
                               const std::vector<int>& exclude) {
  const InterferenceContext ctx = make_interference_context(system, target);
  const BusyWindowKernel kernel(system, ctx, options, exclude);
  return run_latency_search(kernel, system.chain(target), options);
}

LatencyResult latency_analysis(const System& system, const InterferenceContext& ctx,
                               const AnalysisOptions& options, const std::vector<int>& exclude) {
  const BusyWindowKernel kernel(system, ctx, options, exclude);
  return run_latency_search(kernel, system.chain(ctx.target), options);
}

std::optional<Time> busy_time_with_combination(const System& system,
                                               const InterferenceContext& ctx, Count q,
                                               Time combination_cost,
                                               const AnalysisOptions& options) {
  WHARF_EXPECT(q >= 1, "busy_time_with_combination requires q >= 1, got " << q);
  WHARF_EXPECT(combination_cost >= 0, "combination cost must be >= 0");
  // Note: the paper's Eq. (3) literally writes eta_a(B_b(q)) (the *full*
  // busy time) inside the deferred-async term; we evaluate all eta terms
  // at the self-consistent fixed point B^c(q) <= B_b(q), which is the
  // standard busy-window argument and only tightens the bound.
  const BusyWindowKernel kernel(system, ctx, options, system.overload_indices());
  return kernel.fixed_point(q, 0, combination_cost);
}

Time exact_combination_slack(const System& system, const InterferenceContext& ctx, Count K,
                             Time max_cost, const AnalysisOptions& options) {
  WHARF_EXPECT(K >= 1, "exact_combination_slack requires K >= 1, got " << K);
  WHARF_EXPECT(max_cost >= 0, "max_cost must be >= 0");
  const Chain& b = system.chain(ctx.target);
  WHARF_EXPECT(b.deadline().has_value(),
               "exact_combination_slack requires chain '" << b.name() << "' to have a deadline");
  const Time deadline = *b.deadline();

  const BusyWindowKernel kernel(system, ctx, options, system.overload_indices());
  const auto schedulable_at = [&](Time cost) {
    // Warm-start across the q sweep of one probe (resets per cost:
    // different constants shift the fixed points).
    Time warm = 0;
    for (Count q = 1; q <= K; ++q) {
      const std::optional<Time> busy = kernel.fixed_point(q, warm, cost);
      if (!busy.has_value()) return false;
      warm = *busy;
      if (*busy - kernel.self_delta_minus(q) > deadline) return false;
    }
    return true;
  };

  if (!schedulable_at(0)) return -1;
  if (schedulable_at(max_cost)) return max_cost;
  // Largest schedulable cost in [0, max_cost): binary search on the
  // monotone predicate.
  Time lo = 0;              // schedulable
  Time hi = max_cost;       // unschedulable
  while (lo + 1 < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (schedulable_at(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Time typical_bound(const System& system, const InterferenceContext& ctx, Count q,
                   const AnalysisOptions& options) {
  const Chain& b = system.chain(ctx.target);
  WHARF_EXPECT(b.deadline().has_value(),
               "typical_bound requires chain '" << b.name() << "' to have a deadline");
  WHARF_EXPECT(q >= 1, "typical_bound requires q >= 1, got " << q);

  const BusyWindowKernel kernel(system, ctx, options, {});
  const Time window = sat_add(kernel.self_delta_minus(q), *b.deadline());
  return kernel.rhs(q, window, /*skip_overload=*/true);  // Eq. (4): Cover excluded
}

Time typical_slack(const System& system, const InterferenceContext& ctx, Count K,
                   const AnalysisOptions& options) {
  const Chain& b = system.chain(ctx.target);
  WHARF_EXPECT(b.deadline().has_value(),
               "typical_bound requires chain '" << b.name() << "' to have a deadline");
  WHARF_EXPECT(K >= 1, "typical_slack requires K >= 1, got " << K);
  const BusyWindowKernel kernel(system, ctx, options, {});
  Time slack = kTimeInfinity;
  for (Count q = 1; q <= K; ++q) {
    const Time bound = sat_add(kernel.self_delta_minus(q), *b.deadline());
    const Time load = kernel.rhs(q, bound, /*skip_overload=*/true);
    const Time slack_q = is_infinite(load) ? -options.divergence_guard : bound - load;
    slack = std::min(slack, slack_q);
  }
  return slack;
}

}  // namespace wharf
