#include "core/busy_window.hpp"

#include <algorithm>

#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf {

namespace {

/// Interference contributed by one other chain σ_a over a window of
/// length `window`, per Eq. (1)/(3)/(4):
///  * arbitrarily interfering (or `naive`):  η⁺_a(window) · C_a;
///  * deferred, asynchronous:  η⁺_a(window) · C_header_{a,b} + Σ_s C_s;
///  * deferred, synchronous:   C_{s_crit_{a,b}}.
Time chain_interference(const System& system, const ChainInterference& info, Time window,
                        bool naive) {
  const Chain& a = system.chain(info.chain);
  if (naive || !info.deferred) {
    const Count eta = a.arrival().eta_plus(window);
    if (eta == kCountInfinity) return kTimeInfinity;
    return sat_mul(eta, a.total_wcet());
  }
  if (a.is_asynchronous()) {
    const Count eta = a.arrival().eta_plus(window);
    if (eta == kCountInfinity) return kTimeInfinity;
    return sat_add(sat_mul(eta, info.header_segment_cost), info.segments_total_cost);
  }
  return info.critical ? info.critical->cost : 0;
}

/// Self-interference of an asynchronous analyzed chain (2nd line of
/// Eq. 1): activations beyond the q under analysis may run up to the
/// chain's own header subchain before stalling at its lowest-priority
/// task.
Time self_interference(const Chain& b, const InterferenceContext& ctx, Time window, Count q) {
  if (!b.is_asynchronous() || ctx.self_header_cost == 0) return 0;
  const Count eta = b.arrival().eta_plus(window);
  if (eta == kCountInfinity) return kTimeInfinity;
  const Count extra = std::max<Count>(0, eta - q);
  return sat_mul(extra, ctx.self_header_cost);
}

bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

/// Full right-hand side of Eq. (1) evaluated at busy-time guess `window`.
Time busy_rhs(const System& system, const InterferenceContext& ctx, Count q, Time window,
              const AnalysisOptions& options, const std::vector<int>& exclude) {
  const Chain& b = system.chain(ctx.target);
  Time total = sat_mul(q, b.total_wcet());
  total = sat_add(total, self_interference(b, ctx, window, q));
  for (const ChainInterference& info : ctx.others) {
    if (contains(exclude, info.chain)) continue;
    total = sat_add(total, chain_interference(system, info, window, options.naive_arbitrary));
  }
  return total;
}

}  // namespace

std::optional<Time> busy_time(const System& system, const InterferenceContext& ctx, Count q,
                              const AnalysisOptions& options, const std::vector<int>& exclude) {
  WHARF_EXPECT(q >= 1, "busy_time requires q >= 1, got " << q);
  // Kleene iteration from the constant part: Eq. (1) is monotone in B, so
  // this converges to the least fixed point whenever one exists.
  Time current = sat_mul(q, system.chain(ctx.target).total_wcet());
  for (int iter = 0; iter < options.max_fixed_point_iterations; ++iter) {
    const Time next = busy_rhs(system, ctx, q, current, options, exclude);
    if (next >= options.divergence_guard || is_infinite(next)) return std::nullopt;
    if (next == current) return current;
    WHARF_ASSERT(next > current);  // monotone iteration
    current = next;
  }
  return std::nullopt;  // iteration cap: treat as divergent
}

std::vector<BusyTimeTerm> busy_time_breakdown(const System& system,
                                              const InterferenceContext& ctx, Count q, Time busy,
                                              const AnalysisOptions& options,
                                              const std::vector<int>& exclude) {
  const Chain& b = system.chain(ctx.target);
  std::vector<BusyTimeTerm> terms;
  terms.push_back(BusyTimeTerm{util::cat(q, " x C_", b.name(), " (demand)"),
                               sat_mul(q, b.total_wcet())});
  if (b.is_asynchronous()) {
    const Time self = self_interference(b, ctx, busy, q);
    if (self > 0) {
      terms.push_back(BusyTimeTerm{util::cat(b.name(), " header pile-up (async self)"), self});
    }
  }
  for (const ChainInterference& info : ctx.others) {
    if (contains(exclude, info.chain)) continue;
    const Chain& a = system.chain(info.chain);
    const Time amount = chain_interference(system, info, busy, options.naive_arbitrary);
    if (amount == 0) continue;
    std::string kind;
    if (options.naive_arbitrary || !info.deferred) {
      kind = "arbitrary interference";
    } else if (a.is_asynchronous()) {
      kind = "deferred async (header pile-up + one per segment)";
    } else {
      kind = "deferred sync (critical segment)";
    }
    terms.push_back(BusyTimeTerm{util::cat(a.name(), " — ", kind), amount});
  }
  return terms;
}

LatencyResult latency_analysis(const System& system, int target, const AnalysisOptions& options,
                               const std::vector<int>& exclude) {
  const InterferenceContext ctx = make_interference_context(system, target);
  const Chain& b = system.chain(target);

  LatencyResult result;
  result.wcl = 0;
  result.worst_q = 0;

  Count misses = 0;
  for (Count q = 1; q <= options.max_busy_windows; ++q) {
    const std::optional<Time> bq = busy_time(system, ctx, q, options, exclude);
    if (!bq.has_value()) {
      result.bounded = false;
      result.reason = util::cat("busy-time fixed point diverged at q=", q,
                                " (processor overloaded or guard exceeded)");
      return result;
    }
    result.busy_times.push_back(*bq);

    const Time latency = *bq - b.arrival().delta_minus(q);
    if (latency > result.wcl || result.worst_q == 0) {
      result.wcl = latency;
      result.worst_q = q;
    }
    if (b.deadline().has_value() && latency > *b.deadline()) ++misses;

    if (*bq <= b.arrival().delta_minus(q + 1)) {
      result.K = q;
      result.bounded = true;
      if (b.deadline().has_value()) {
        result.misses_per_window = misses;
        result.schedulable = result.wcl <= *b.deadline();
      }
      return result;
    }
  }
  result.bounded = false;
  result.reason = util::cat("no maximal busy window within ", options.max_busy_windows,
                            " activations (K_b search cap)");
  return result;
}

std::optional<Time> busy_time_with_combination(const System& system,
                                               const InterferenceContext& ctx, Count q,
                                               Time combination_cost,
                                               const AnalysisOptions& options) {
  WHARF_EXPECT(q >= 1, "busy_time_with_combination requires q >= 1, got " << q);
  WHARF_EXPECT(combination_cost >= 0, "combination cost must be >= 0");
  // Note: the paper's Eq. (3) literally writes eta_a(B_b(q)) (the *full*
  // busy time) inside the deferred-async term; we evaluate all eta terms
  // at the self-consistent fixed point B^c(q) <= B_b(q), which is the
  // standard busy-window argument and only tightens the bound.
  const std::vector<int>& overload = system.overload_indices();
  Time current =
      sat_add(sat_mul(q, system.chain(ctx.target).total_wcet()), combination_cost);
  for (int iter = 0; iter < options.max_fixed_point_iterations; ++iter) {
    const Time next =
        sat_add(busy_rhs(system, ctx, q, current, options, overload), combination_cost);
    if (next >= options.divergence_guard || is_infinite(next)) return std::nullopt;
    if (next == current) return current;
    WHARF_ASSERT(next > current);
    current = next;
  }
  return std::nullopt;
}

Time exact_combination_slack(const System& system, const InterferenceContext& ctx, Count K,
                             Time max_cost, const AnalysisOptions& options) {
  WHARF_EXPECT(K >= 1, "exact_combination_slack requires K >= 1, got " << K);
  WHARF_EXPECT(max_cost >= 0, "max_cost must be >= 0");
  const Chain& b = system.chain(ctx.target);
  WHARF_EXPECT(b.deadline().has_value(),
               "exact_combination_slack requires chain '" << b.name() << "' to have a deadline");
  const Time deadline = *b.deadline();

  const auto schedulable_at = [&](Time cost) {
    for (Count q = 1; q <= K; ++q) {
      const std::optional<Time> busy = busy_time_with_combination(system, ctx, q, cost, options);
      if (!busy.has_value()) return false;
      if (*busy - b.arrival().delta_minus(q) > deadline) return false;
    }
    return true;
  };

  if (!schedulable_at(0)) return -1;
  if (schedulable_at(max_cost)) return max_cost;
  // Largest schedulable cost in [0, max_cost): binary search on the
  // monotone predicate.
  Time lo = 0;              // schedulable
  Time hi = max_cost;       // unschedulable
  while (lo + 1 < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (schedulable_at(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Time typical_bound(const System& system, const InterferenceContext& ctx, Count q,
                   const AnalysisOptions& options) {
  const Chain& b = system.chain(ctx.target);
  WHARF_EXPECT(b.deadline().has_value(),
               "typical_bound requires chain '" << b.name() << "' to have a deadline");
  WHARF_EXPECT(q >= 1, "typical_bound requires q >= 1, got " << q);

  const Time window = sat_add(b.arrival().delta_minus(q), *b.deadline());
  Time total = sat_mul(q, b.total_wcet());
  total = sat_add(total, self_interference(b, ctx, window, q));
  for (const ChainInterference& info : ctx.others) {
    if (system.chain(info.chain).is_overload()) continue;  // Eq. (4): Cover excluded
    total = sat_add(total, chain_interference(system, info, window, options.naive_arbitrary));
  }
  return total;
}

Time typical_slack(const System& system, const InterferenceContext& ctx, Count K,
                   const AnalysisOptions& options) {
  const Chain& b = system.chain(ctx.target);
  WHARF_EXPECT(K >= 1, "typical_slack requires K >= 1, got " << K);
  Time slack = kTimeInfinity;
  for (Count q = 1; q <= K; ++q) {
    const Time bound = sat_add(b.arrival().delta_minus(q), *b.deadline());
    const Time load = typical_bound(system, ctx, q, options);
    const Time slack_q = is_infinite(load) ? -options.divergence_guard : bound - load;
    slack = std::min(slack, slack_q);
  }
  return slack;
}

}  // namespace wharf
