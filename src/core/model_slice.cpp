#include "core/model_slice.hpp"

#include <sstream>

#include "core/segments.hpp"

namespace wharf {

namespace {

void append_chain_content(std::ostream& os, const Chain& chain) {
  os << "chain{" << chain.name() << ';' << (chain.is_synchronous() ? 'S' : 'A') << ';'
     << chain.arrival().describe() << ';';
  if (chain.deadline().has_value()) {
    os << *chain.deadline();
  } else {
    os << '-';
  }
  os << ';' << (chain.is_overload() ? 'O' : '.') << ";[";
  for (const Task& task : chain.tasks()) {
    os << task.priority << ':' << task.wcet << ',';
  }
  os << "]}";
}

}  // namespace

std::string chain_content(const Chain& chain) {
  std::ostringstream os;
  append_chain_content(os, chain);
  return os.str();
}

std::string interference_slice(const Chain& a, const Chain& b) {
  std::ostringstream os;
  const Priority min_b = b.min_priority();
  os << "ifc{" << a.name() << ';' << (a.is_synchronous() ? 'S' : 'A') << ";[";
  for (const Task& task : a.tasks()) {
    os << task.wcet << ':' << (task.priority > min_b ? '1' : '0') << ',';
  }
  os << "]}";
  return os.str();
}

std::string busy_interference_slice(const Chain& a, const Chain& b) {
  std::ostringstream os;
  os << "bwi{" << a.name() << ';' << (a.is_synchronous() ? 'S' : 'A') << ';'
     << a.arrival().describe() << ";C=" << a.total_wcet() << ';';
  if (!is_deferred(a, b)) {
    os << "arb}";
    return os.str();
  }
  os << "def;hdr=" << cost_of(a, header_segment_wrt(a, b)) << ";segs=[";
  Time total = 0;
  for (const Segment& s : segments_wrt(a, b)) {
    os << s.cost << (s.wraps ? 'w' : '.') << ',';
    total = sat_add(total, s.cost);
  }
  const auto critical = critical_segment(a, b);
  os << "];sum=" << total << ";crit=" << (critical ? critical->cost : 0) << '}';
  return os.str();
}

std::string overload_slice(const Chain& a, const Chain& b) {
  std::ostringstream os;
  os << "ovl{" << a.name() << ';' << a.arrival().describe() << ";active=[";
  for (const ActiveSegment& s : active_segments_wrt(a, b)) {
    os << s.segment_index << ':' << s.cost << ',';
  }
  os << "]}";
  return os.str();
}

std::string analysis_options_slice(const AnalysisOptions& options) {
  std::ostringstream os;
  os << "ao{" << options.max_busy_windows << ';' << options.max_fixed_point_iterations << ';'
     << options.divergence_guard << ';' << options.naive_arbitrary << '}';
  return os.str();
}

std::string combination_options_slice(const TwcaOptions& options) {
  std::ostringstream os;
  os << "co{" << static_cast<int>(options.criterion) << ';' << options.max_combinations << ';'
     << options.minimal_only << '}';
  return os.str();
}

std::string interference_key(const System& system, int target) {
  // The cached InterferenceContext embeds absolute chain indices
  // (ctx.target, others[].chain) that consumers dereference against the
  // *current* system, so the key pins every position: two systems
  // listing the same chains in a different order must not collide.
  std::ostringstream os;
  os << "ifc|t=" << target << ';';
  append_chain_content(os, system.chain(target));
  for (int a = 0; a < system.size(); ++a) {
    if (a == target) continue;
    os << '@' << a << interference_slice(system.chain(a), system.chain(target));
  }
  return os.str();
}

std::string busy_window_key(const System& system, int target, const AnalysisOptions& options,
                            bool without_overload) {
  std::ostringstream os;
  os << (without_overload ? "bw-noov|" : "bw|") << analysis_options_slice(options);
  append_chain_content(os, system.chain(target));
  for (int a = 0; a < system.size(); ++a) {
    if (a == target) continue;
    if (without_overload && system.chain(a).is_overload()) continue;
    os << busy_interference_slice(system.chain(a), system.chain(target));
  }
  return os.str();
}

std::string overload_key(const System& system, int target, const TwcaOptions& options) {
  // The k-independent artifacts read the full latency result (whose key
  // is the busy-window slice), the typical/exact slack (same reads, with
  // overload chains excluded — a subset), and the active segments of
  // every overload chain.  The cached TargetArtifacts embed absolute
  // chain indices (structure.target, per_chain[].chain) and the slack
  // computation dereferences the cached interference context's indices,
  // so — unlike the busy-window key, whose artifact is pure data — the
  // target and overload positions are pinned into the key.
  std::ostringstream os;
  os << "ov|t=" << target << ';' << combination_options_slice(options)
     << busy_window_key(system, target, options.analysis, /*without_overload=*/false);
  for (const int a : system.overload_indices()) {
    if (a == target) continue;
    os << '@' << a << overload_slice(system.chain(a), system.chain(target));
  }
  return os.str();
}

std::string dmm_key(const System& system, int target, Count k, const TwcaOptions& options) {
  std::ostringstream os;
  os << "dmm|k=" << k << ";cap=" << options.cap_at_k << ";dfs=" << options.use_dfs_packer << ';'
     << overload_key(system, target, options);
  return os.str();
}

}  // namespace wharf
