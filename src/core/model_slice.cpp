#include "core/model_slice.hpp"

#include <algorithm>
#include <charconv>

#include "core/segments.hpp"

namespace wharf {

namespace {

// Slice strings are built on the Engine's hottest path (one key per
// artifact per request — a priority search builds them per candidate),
// so everything appends into one preallocated std::string instead of
// going through ostringstream.

void append_num(std::string& out, long long v) {
  char buf[24];
  const auto end = std::to_chars(buf, buf + sizeof buf, v).ptr;
  out.append(buf, static_cast<std::size_t>(end - buf));
}

void append_chain_content(std::string& out, const Chain& chain) {
  out += "chain{";
  out += chain.name();
  out += ';';
  out += chain.is_synchronous() ? 'S' : 'A';
  out += ';';
  out += chain.arrival().describe();
  out += ';';
  if (chain.deadline().has_value()) {
    append_num(out, *chain.deadline());
  } else {
    out += '-';
  }
  out += ';';
  out += chain.is_overload() ? 'O' : '.';
  out += ";[";
  for (const Task& task : chain.tasks()) {
    append_num(out, task.priority);
    out += ':';
    append_num(out, task.wcet);
    out += ',';
  }
  out += "]}";
}

void append_interference_slice(std::string& out, const Chain& a, const Chain& b) {
  const Priority min_b = b.min_priority();
  out += "ifc{";
  out += a.name();
  out += ';';
  out += a.is_synchronous() ? 'S' : 'A';
  out += ";[";
  for (const Task& task : a.tasks()) {
    append_num(out, task.wcet);
    out += ':';
    out += task.priority > min_b ? '1' : '0';
    out += ',';
  }
  out += "]}";
}

void append_busy_interference_slice(std::string& out, const Chain& a, const Chain& b) {
  out += "bwi{";
  out += a.name();
  out += ';';
  out += a.is_synchronous() ? 'S' : 'A';
  out += ';';
  out += a.arrival().describe();
  out += ";C=";
  append_num(out, a.total_wcet());
  out += ';';
  if (!is_deferred(a, b)) {
    out += "arb}";
    return;
  }
  out += "def;hdr=";
  append_num(out, cost_of(a, header_segment_wrt(a, b)));
  out += ";segs=[";
  Time total = 0;
  Time critical = 0;
  bool any = false;
  for (const Segment& s : segments_wrt(a, b)) {
    append_num(out, s.cost);
    out += s.wraps ? 'w' : '.';
    out += ',';
    total = sat_add(total, s.cost);
    critical = any ? std::max(critical, s.cost) : s.cost;
    any = true;
  }
  out += "];sum=";
  append_num(out, total);
  out += ";crit=";
  append_num(out, any ? critical : 0);
  out += '}';
}

void append_overload_slice(std::string& out, const Chain& a, const Chain& b) {
  out += "ovl{";
  out += a.name();
  out += ';';
  out += a.arrival().describe();
  out += ";active=[";
  for (const ActiveSegment& s : active_segments_wrt(a, b)) {
    append_num(out, s.segment_index);
    out += ':';
    append_num(out, s.cost);
    out += ',';
  }
  out += "]}";
}

void append_analysis_options_slice(std::string& out, const AnalysisOptions& options) {
  out += "ao{";
  append_num(out, static_cast<long long>(options.max_busy_windows));
  out += ';';
  append_num(out, static_cast<long long>(options.max_fixed_point_iterations));
  out += ';';
  append_num(out, options.divergence_guard);
  out += ';';
  append_num(out, options.naive_arbitrary);
  out += '}';
}

void append_combination_options_slice(std::string& out, const TwcaOptions& options) {
  out += "co{";
  append_num(out, static_cast<int>(options.criterion));
  out += ';';
  append_num(out, static_cast<long long>(options.max_combinations));
  out += ';';
  append_num(out, options.minimal_only);
  out += '}';
}

}  // namespace

// ---------------------------------------------------------------------
// KeyInterner
// ---------------------------------------------------------------------

std::uint32_t KeyInterner::intern(std::string_view piece) {
  const util::MutexLock guard(mutex_);
  const auto it = index_.find(piece);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(fragments_.size());
  fragments_.emplace_back(piece);
  index_.emplace(std::string_view(fragments_.back()), id);
  return id;
}

const std::string& KeyInterner::fragment(std::uint32_t id) const {
  const util::MutexLock guard(mutex_);
  return fragments_.at(id);
}

std::size_t KeyInterner::size() const {
  const util::MutexLock guard(mutex_);
  return fragments_.size();
}

void KeyInterner::append_id(std::string& out, std::uint32_t id) {
  out += static_cast<char>(id & 0xffu);
  out += static_cast<char>((id >> 8) & 0xffu);
  out += static_cast<char>((id >> 16) & 0xffu);
  out += static_cast<char>((id >> 24) & 0xffu);
}

std::uint32_t KeyInterner::read_id(const char* bytes) {
  const auto* u = reinterpret_cast<const unsigned char*>(bytes);
  return static_cast<std::uint32_t>(u[0]) | (static_cast<std::uint32_t>(u[1]) << 8) |
         (static_cast<std::uint32_t>(u[2]) << 16) | (static_cast<std::uint32_t>(u[3]) << 24);
}

// ---------------------------------------------------------------------
// SliceCache
// ---------------------------------------------------------------------

void SliceCache::invalidate() {
  const util::MutexLock guard(mutex_);
  entries_.clear();
}

SliceCache::Stats SliceCache::stats() const {
  const util::MutexLock guard(mutex_);
  return stats_;
}

const std::string& SliceCache::acquire(Kind kind, const System& system, int a, int b) {
  // The memo key: slice kind, chain positions, the source chain's
  // priority sub-vector and — for pairwise slices — the target's minimum
  // priority (the only fact about the target's priorities any slice
  // reads).  Everything else a slice serializes is structural and fixed
  // for the cache's lifetime (see the class contract).
  std::string key;
  key.reserve(16 + 8 * static_cast<std::size_t>(system.chain(a).size()));
  key += static_cast<char>(kind);
  key += '|';
  append_num(key, a);
  key += ';';
  for (const Task& task : system.chain(a).tasks()) {
    append_num(key, task.priority);
    key += ',';
  }
  if (kind != Kind::kContent) {
    key += ';';
    append_num(key, b);
    key += ':';
    append_num(key, system.chain(b).min_priority());
  }

  {
    const util::MutexLock guard(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      return it->second;
    }
  }

  // Serialize outside the lock (slice building walks segment
  // structures); racing builders produce equal strings, first wins.
  std::string built;
  switch (kind) {
    case Kind::kContent:
      built.reserve(64);
      append_chain_content(built, system.chain(a));
      break;
    case Kind::kInterference:
      built.reserve(48);
      append_interference_slice(built, system.chain(a), system.chain(b));
      break;
    case Kind::kBusyInterference:
      built.reserve(96);
      append_busy_interference_slice(built, system.chain(a), system.chain(b));
      break;
    case Kind::kOverload:
      built.reserve(64);
      append_overload_slice(built, system.chain(a), system.chain(b));
      break;
  }
  const util::MutexLock guard(mutex_);
  ++stats_.misses;
  std::string& slot = entries_[std::move(key)];
  if (slot.empty()) slot = std::move(built);
  return slot;
}

const std::string& SliceCache::chain_content(const System& system, int chain) {
  return acquire(Kind::kContent, system, chain, chain);
}

const std::string& SliceCache::interference_slice(const System& system, int a, int b) {
  return acquire(Kind::kInterference, system, a, b);
}

const std::string& SliceCache::busy_interference_slice(const System& system, int a, int b) {
  return acquire(Kind::kBusyInterference, system, a, b);
}

const std::string& SliceCache::overload_slice(const System& system, int a, int b) {
  return acquire(Kind::kOverload, system, a, b);
}

std::string chain_content(const Chain& chain) {
  std::string out;
  out.reserve(64);
  append_chain_content(out, chain);
  return out;
}

std::string interference_slice(const Chain& a, const Chain& b) {
  std::string out;
  out.reserve(48);
  append_interference_slice(out, a, b);
  return out;
}

std::string busy_interference_slice(const Chain& a, const Chain& b) {
  std::string out;
  out.reserve(96);
  append_busy_interference_slice(out, a, b);
  return out;
}

std::string overload_slice(const Chain& a, const Chain& b) {
  std::string out;
  out.reserve(64);
  append_overload_slice(out, a, b);
  return out;
}

std::string analysis_options_slice(const AnalysisOptions& options) {
  std::string out;
  out.reserve(48);
  append_analysis_options_slice(out, options);
  return out;
}

std::string combination_options_slice(const TwcaOptions& options) {
  std::string out;
  out.reserve(32);
  append_combination_options_slice(out, options);
  return out;
}

namespace {

// Appends one fragment to an interned key: intern the text, emit the id.
void append_fragment(std::string& out, KeyInterner& interner, std::string_view piece) {
  KeyInterner::append_id(out, interner.intern(piece));
}

}  // namespace

std::string interference_key(const System& system, int target, SliceCache* slices,
                             KeyInterner* interner) {
  // The cached InterferenceContext embeds absolute chain indices
  // (ctx.target, others[].chain) that consumers dereference against the
  // *current* system, so the key pins every position: two systems
  // listing the same chains in a different order must not collide.
  std::string out;
  if (interner != nullptr) {
    // Interned encoding: one id per fragment, same decomposition as the
    // textual key below (header, target content, one "@a"-pinned slice
    // per interferer) — equal fragment sequences ⇔ equal id sequences.
    out.reserve(KeyInterner::kIdBytes * (static_cast<std::size_t>(system.size()) + 1));
    std::string piece;
    piece.reserve(64);
    piece += "ifc|t=";
    append_num(piece, target);
    piece += ';';
    append_fragment(out, *interner, piece);
    if (slices != nullptr) {
      append_fragment(out, *interner, slices->chain_content(system, target));
    } else {
      piece.clear();
      append_chain_content(piece, system.chain(target));
      append_fragment(out, *interner, piece);
    }
    for (int a = 0; a < system.size(); ++a) {
      if (a == target) continue;
      piece.clear();
      piece += '@';
      append_num(piece, a);
      if (slices != nullptr) {
        piece += slices->interference_slice(system, a, target);
      } else {
        append_interference_slice(piece, system.chain(a), system.chain(target));
      }
      append_fragment(out, *interner, piece);
    }
    return out;
  }
  out.reserve(64 * static_cast<std::size_t>(system.size()));
  out += "ifc|t=";
  append_num(out, target);
  out += ';';
  if (slices != nullptr) {
    out += slices->chain_content(system, target);
  } else {
    append_chain_content(out, system.chain(target));
  }
  for (int a = 0; a < system.size(); ++a) {
    if (a == target) continue;
    out += '@';
    append_num(out, a);
    if (slices != nullptr) {
      out += slices->interference_slice(system, a, target);
    } else {
      append_interference_slice(out, system.chain(a), system.chain(target));
    }
  }
  return out;
}

std::string busy_window_key(const System& system, int target, const AnalysisOptions& options,
                            bool without_overload, SliceCache* slices, KeyInterner* interner) {
  std::string out;
  if (interner != nullptr) {
    out.reserve(KeyInterner::kIdBytes * (static_cast<std::size_t>(system.size()) + 1));
    std::string piece;
    piece.reserve(96);
    piece += without_overload ? "bw-noov|" : "bw|";
    append_analysis_options_slice(piece, options);
    append_fragment(out, *interner, piece);
    if (slices != nullptr) {
      append_fragment(out, *interner, slices->chain_content(system, target));
    } else {
      piece.clear();
      append_chain_content(piece, system.chain(target));
      append_fragment(out, *interner, piece);
    }
    for (int a = 0; a < system.size(); ++a) {
      if (a == target) continue;
      if (without_overload && system.chain(a).is_overload()) continue;
      if (slices != nullptr) {
        append_fragment(out, *interner, slices->busy_interference_slice(system, a, target));
      } else {
        piece.clear();
        append_busy_interference_slice(piece, system.chain(a), system.chain(target));
        append_fragment(out, *interner, piece);
      }
    }
    return out;
  }
  out.reserve(96 * static_cast<std::size_t>(system.size()));
  out += without_overload ? "bw-noov|" : "bw|";
  append_analysis_options_slice(out, options);
  if (slices != nullptr) {
    out += slices->chain_content(system, target);
  } else {
    append_chain_content(out, system.chain(target));
  }
  for (int a = 0; a < system.size(); ++a) {
    if (a == target) continue;
    if (without_overload && system.chain(a).is_overload()) continue;
    if (slices != nullptr) {
      out += slices->busy_interference_slice(system, a, target);
    } else {
      append_busy_interference_slice(out, system.chain(a), system.chain(target));
    }
  }
  return out;
}

std::string overload_key(const System& system, int target, const TwcaOptions& options) {
  return overload_key(system, target, options,
                      busy_window_key(system, target, options.analysis,
                                      /*without_overload=*/false));
}

std::string overload_key(const System& system, int target, const TwcaOptions& options,
                         const std::string& busy_window_part, SliceCache* slices,
                         KeyInterner* interner) {
  // The k-independent artifacts read the full latency result (whose key
  // is the busy-window slice), the typical/exact slack (same reads, with
  // overload chains excluded — a subset), and the active segments of
  // every overload chain.  The cached TargetArtifacts embed absolute
  // chain indices (structure.target, per_chain[].chain) and the slack
  // computation dereferences the cached interference context's indices,
  // so — unlike the busy-window key, whose artifact is pure data — the
  // target and overload positions are pinned into the key.
  std::string out;
  if (interner != nullptr) {
    // Interned: header fragment, then the (already interned) busy-window
    // part verbatim, then one "@a"-pinned fragment per overload chain.
    out.reserve(busy_window_part.size() +
                KeyInterner::kIdBytes * (system.overload_indices().size() + 1));
    std::string piece;
    piece.reserve(64);
    piece += "ov|t=";
    append_num(piece, target);
    piece += ';';
    append_combination_options_slice(piece, options);
    append_fragment(out, *interner, piece);
    out += busy_window_part;
    for (const int a : system.overload_indices()) {
      if (a == target) continue;
      piece.clear();
      piece += '@';
      append_num(piece, a);
      if (slices != nullptr) {
        piece += slices->overload_slice(system, a, target);
      } else {
        append_overload_slice(piece, system.chain(a), system.chain(target));
      }
      append_fragment(out, *interner, piece);
    }
    return out;
  }
  out.reserve(busy_window_part.size() + 64 * system.overload_indices().size() + 48);
  out += "ov|t=";
  append_num(out, target);
  out += ';';
  append_combination_options_slice(out, options);
  out += busy_window_part;
  for (const int a : system.overload_indices()) {
    if (a == target) continue;
    out += '@';
    append_num(out, a);
    if (slices != nullptr) {
      out += slices->overload_slice(system, a, target);
    } else {
      append_overload_slice(out, system.chain(a), system.chain(target));
    }
  }
  return out;
}

std::string dmm_key(const System& system, int target, Count k, const TwcaOptions& options) {
  return dmm_key(k, options, overload_key(system, target, options));
}

std::string dmm_key(Count k, const TwcaOptions& options, const std::string& overload_part,
                    KeyInterner* interner) {
  std::string out;
  out.reserve(overload_part.size() + (interner != nullptr ? KeyInterner::kIdBytes : 40));
  std::string piece;
  std::string& header = interner != nullptr ? piece : out;
  header += "dmm|k=";
  append_num(header, k);
  header += ";cap=";
  append_num(header, options.cap_at_k);
  header += ";dfs=";
  append_num(header, options.use_dfs_packer);
  header += ';';
  if (interner != nullptr) append_fragment(out, *interner, piece);
  out += overload_part;
  return out;
}

}  // namespace wharf
