/// \file arrival_table.hpp
/// Flattened, devirtualized arrival-curve evaluation for the busy-window
/// hot path.
///
/// The busy-window kernel (busy_window.cpp) evaluates eta_plus and
/// delta_minus thousands of times per fixed point.  Going through the
/// ArrivalModel vtable per call — and, for explicit curves, through a
/// prefix scan — puts an indirect branch on every term of Eq. (1).  An
/// ArrivalTable is built once per interference context from the model's
/// ArrivalTailSpec (arrival.hpp): a dense prefix of delta_minus values
/// plus the arithmetic tail (block, span), after which both queries are
/// a branch-free binary search / direct index plus O(block) integer
/// arithmetic, bit-identical to the virtual path.
///
/// Models without a tail spec (or with a dense prefix too large to
/// materialize) keep working: the table falls back to the wrapped
/// model's virtual evaluation, so flattening is purely an optimization.

#ifndef WHARF_CORE_ARRIVAL_TABLE_HPP
#define WHARF_CORE_ARRIVAL_TABLE_HPP

#include <cstddef>
#include <vector>

#include "core/arrival.hpp"
#include "util/types.hpp"

namespace wharf {

/// Precomputed flat view of one ArrivalModel's delta_minus curve (see
/// the file comment).  Immutable after construction; cheap to share.
class ArrivalTable {
 public:
  /// Builds the dense prefix + tail representation from `model`'s
  /// ArrivalTailSpec; degenerates to a virtual-dispatch wrapper (see
  /// flat()) when the model has no spec or its prefix would be huge.
  explicit ArrivalTable(ArrivalModelPtr model);

  /// Same value as model().eta_plus(window), without virtual dispatch
  /// on the flat path.
  [[nodiscard]] Count eta_plus(Time window) const;

  /// Same value as model().delta_minus(q), without virtual dispatch on
  /// the flat path.
  [[nodiscard]] Time delta_minus(Count q) const;

  /// The wrapped model (always non-null).
  [[nodiscard]] const ArrivalModel& model() const { return *model_; }

  /// True when the dense-prefix representation is active; false means
  /// every query falls back to virtual evaluation.
  [[nodiscard]] bool flat() const { return !delta_.empty(); }

  /// Heap footprint of the dense prefix, for store weight accounting.
  [[nodiscard]] std::size_t heap_bytes() const { return delta_.capacity() * sizeof(Time); }

 private:
  ArrivalModelPtr model_;
  /// delta_[i] == delta_minus(i + 1); covers q in [1, valid_from + block - 1],
  /// so every residue class of the tail recurrence has a dense anchor.
  std::vector<Time> delta_;
  Count block_ = 1;
  Time span_ = 1;
};

}  // namespace wharf

#endif  // WHARF_CORE_ARRIVAL_TABLE_HPP
