#include "core/twca.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <optional>

#include "ilp/packing.hpp"
#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf {

std::string to_string(DmmStatus status) {
  switch (status) {
    case DmmStatus::kAlwaysMeets: return "always-meets";
    case DmmStatus::kBounded: return "bounded";
    case DmmStatus::kNoGuarantee: return "no-guarantee";
  }
  return "unknown";
}

// ---------------------------------------------------------------------
// Stage boundaries
// ---------------------------------------------------------------------

TargetArtifacts build_target_artifacts(const System& system, int target,
                                       const InterferenceContext& context,
                                       const LatencyResult& latency,
                                       const TwcaOptions& options) {
  const Chain& chain_b = system.chain(target);
  WHARF_EXPECT(chain_b.deadline().has_value(),
               "DMM computation requires chain '" << chain_b.name() << "' to have a deadline");

  TargetArtifacts data;
  if (!latency.bounded) {
    data.no_guarantee_reason = util::cat("latency analysis unbounded: ", latency.reason);
    return data;
  }
  if (latency.schedulable) {
    data.always_meets = true;
    return data;
  }
  if (system.overload_indices().empty()) {
    data.no_guarantee_reason =
        "chain can miss its deadline but the system declares no overload chains; TWCA "
        "attributes misses to overload only";
    return data;
  }

  data.structure = overload_structure(system, target);

  if (options.criterion == SchedulabilityCriterion::kExactEq3) {
    // Largest conceivable combination cost: every active segment of
    // every overload chain at once.
    Time max_cost = 0;
    for (const OverloadActiveSegments& pc : data.structure.per_chain) {
      for (const ActiveSegment& s : pc.active) max_cost = sat_add(max_cost, s.cost);
    }
    data.slack = exact_combination_slack(system, context, latency.K, max_cost,
                                         options.analysis);
  } else {
    data.slack = typical_slack(system, context, latency.K, options.analysis);
  }
  if (data.slack < 0) {
    data.no_guarantee_reason = util::cat(
        "negative slack (", data.slack,
        "): the chain can miss deadlines even when no overload chain is activated");
    return data;
  }

  data.unschedulable = unschedulable_combinations(system, data.structure, data.slack,
                                                  options.max_combinations,
                                                  options.minimal_only);
  return data;
}

DmmResult dmm_from_artifacts(const System& system, int target, const LatencyResult& latency,
                             const TargetArtifacts& data, Count k, const TwcaOptions& options,
                             const PackingSolver& solver) {
  WHARF_EXPECT(k >= 1, "dmm requires k >= 1, got " << k);
  WHARF_EXPECT(target >= 0 && target < system.size(),
               "chain index " << target << " out of range [0, " << system.size() << ")");
  WHARF_EXPECT(!system.chain(target).is_overload(),
               "DMM target '" << system.chain(target).name()
                              << "' must not be an overload chain");

  DmmResult result;
  result.k = k;
  result.wcl = latency.bounded ? latency.wcl : 0;
  result.K = latency.K;
  result.n_b = latency.misses_per_window.value_or(0);
  result.slack = data.slack;

  if (data.no_guarantee_reason.has_value()) {
    result.status = DmmStatus::kNoGuarantee;
    result.reason = *data.no_guarantee_reason;
    result.dmm = k;
    return result;
  }
  if (data.always_meets) {
    result.status = DmmStatus::kAlwaysMeets;
    result.dmm = 0;
    return result;
  }

  // Lemma 4: Ω^a_b = η⁺_a(δ⁺_b(k) + WCL_b) + 1 per overload chain.
  const Chain& chain_b = system.chain(target);
  const Time delta_plus_k = chain_b.arrival().delta_plus(k);
  if (is_infinite(delta_plus_k)) {
    result.status = DmmStatus::kNoGuarantee;
    result.reason = util::cat("delta_plus(", k, ") of chain '", chain_b.name(),
                              "' is unbounded; Lemma 4 needs a finite window");
    result.dmm = k;
    return result;
  }
  const Time window = sat_add(delta_plus_k, latency.wcl);
  for (const OverloadActiveSegments& pc : data.structure.per_chain) {
    const Count eta = system.chain(pc.chain).arrival().eta_plus(window);
    if (eta == kCountInfinity) {
      result.status = DmmStatus::kNoGuarantee;
      result.reason = util::cat("eta_plus of overload chain '", system.chain(pc.chain).name(),
                                "' is unbounded over the Lemma-4 window");
      result.dmm = k;
      return result;
    }
    result.omegas.push_back(eta + 1);
  }

  result.combination_count = data.unschedulable.size();
  result.unschedulable_count = data.unschedulable.size();
  result.status = DmmStatus::kBounded;

  if (data.unschedulable.empty()) {
    // No overload combination can cause a miss per Eq. (5): dmm == 0.
    result.dmm = 0;
    return result;
  }

  // Theorem 3: pack unschedulable combinations into busy windows under
  // per-(chain, active segment) capacities Ω^a_b.
  ilp::PackingProblem packing;
  std::vector<int> resource_offset(data.structure.per_chain.size() + 1, 0);
  for (std::size_t i = 0; i < data.structure.per_chain.size(); ++i) {
    resource_offset[i + 1] =
        resource_offset[i] + static_cast<int>(data.structure.per_chain[i].active.size());
  }
  packing.capacities.resize(static_cast<std::size_t>(resource_offset.back()), 0);
  for (std::size_t i = 0; i < data.structure.per_chain.size(); ++i) {
    for (std::size_t s = 0; s < data.structure.per_chain[i].active.size(); ++s) {
      packing.capacities[static_cast<std::size_t>(resource_offset[i]) + s] = result.omegas[i];
    }
  }
  for (const Combination& c : data.unschedulable) {
    std::vector<int> resources;
    resources.reserve(c.segments.size());
    for (const ActiveSegmentId& id : c.segments) {
      resources.push_back(resource_offset[static_cast<std::size_t>(id.chain_pos)] +
                          id.active_index);
    }
    packing.item_resources.push_back(std::move(resources));
  }

  const ilp::PackingSolution packed =
      solver ? solver(packing)
             : (options.use_dfs_packer ? ilp::solve_packing_dfs(packing)
                                       : ilp::solve_packing_ilp(packing));
  result.packing_optimum = packed.total;
  result.solver_nodes = packed.nodes;

  Time dmm = sat_mul(result.n_b, packed.total);
  if (options.cap_at_k) dmm = std::min<Time>(dmm, k);
  result.dmm = dmm;
  return result;
}

// ---------------------------------------------------------------------
// TwcaAnalyzer
// ---------------------------------------------------------------------

struct TwcaAnalyzer::Impl {
  System system;
  TwcaOptions options;
  mutable std::vector<std::optional<InterferenceContext>> context_cache;
  mutable std::vector<std::optional<LatencyResult>> latency_cache;
  mutable std::vector<std::optional<LatencyResult>> typical_latency_cache;
  mutable std::vector<std::optional<TargetArtifacts>> artifact_cache;
  /// One lock per chain: the public methods hold the target chain's lock
  /// for the whole query, so concurrent queries on *different* chains of
  /// one analyzer run in parallel while each chain's cache slots stay
  /// write-once.  Returned references remain valid after unlocking
  /// because engaged slots are never reassigned and the vectors are
  /// never resized.
  mutable std::unique_ptr<std::mutex[]> chain_locks;

  Impl(System sys, TwcaOptions opts) : system(std::move(sys)), options(opts) {
    const auto n = static_cast<std::size_t>(system.size());
    context_cache.resize(n);
    latency_cache.resize(n);
    typical_latency_cache.resize(n);
    artifact_cache.resize(n);
    chain_locks = std::make_unique<std::mutex[]>(n);
  }

  std::unique_lock<std::mutex> lock_chain(int chain) const {
    return std::unique_lock<std::mutex>(chain_locks[static_cast<std::size_t>(chain)]);
  }

  const InterferenceContext& context(int chain) const {
    auto& slot = context_cache[static_cast<std::size_t>(chain)];
    if (!slot.has_value()) slot = make_interference_context(system, chain);
    return *slot;
  }

  const LatencyResult& latency(int chain) const {
    auto& slot = latency_cache[static_cast<std::size_t>(chain)];
    if (!slot.has_value()) slot = latency_analysis(system, chain, options.analysis);
    return *slot;
  }

  const LatencyResult& latency_without_overload(int chain) const {
    auto& slot = typical_latency_cache[static_cast<std::size_t>(chain)];
    if (!slot.has_value()) {
      slot = latency_analysis(system, chain, options.analysis, system.overload_indices());
    }
    return *slot;
  }

  /// Builds (and caches) everything about chain `b` that Theorem 3 needs
  /// and that does not depend on k.
  const TargetArtifacts& artifacts(int b) const {
    auto& slot = artifact_cache[static_cast<std::size_t>(b)];
    if (!slot.has_value()) {
      slot = build_target_artifacts(system, b, context(b), latency(b), options);
    }
    return *slot;
  }
};

TwcaAnalyzer::TwcaAnalyzer(System system, TwcaOptions options)
    : impl_(std::make_unique<Impl>(std::move(system), options)) {}

TwcaAnalyzer::~TwcaAnalyzer() = default;
TwcaAnalyzer::TwcaAnalyzer(TwcaAnalyzer&&) noexcept = default;
TwcaAnalyzer& TwcaAnalyzer::operator=(TwcaAnalyzer&&) noexcept = default;

const System& TwcaAnalyzer::system() const { return impl_->system; }
const TwcaOptions& TwcaAnalyzer::options() const { return impl_->options; }

const LatencyResult& TwcaAnalyzer::latency(int chain) const {
  WHARF_EXPECT(chain >= 0 && chain < impl_->system.size(),
               "chain index " << chain << " out of range [0, " << impl_->system.size() << ")");
  const auto lock = impl_->lock_chain(chain);
  return impl_->latency(chain);
}

const LatencyResult& TwcaAnalyzer::latency_without_overload(int chain) const {
  WHARF_EXPECT(chain >= 0 && chain < impl_->system.size(),
               "chain index " << chain << " out of range [0, " << impl_->system.size() << ")");
  const auto lock = impl_->lock_chain(chain);
  return impl_->latency_without_overload(chain);
}

DmmResult TwcaAnalyzer::dmm(int b, Count k) const {
  WHARF_EXPECT(k >= 1, "dmm requires k >= 1, got " << k);
  const System& system = impl_->system;
  WHARF_EXPECT(b >= 0 && b < system.size(),
               "chain index " << b << " out of range [0, " << system.size() << ")");
  WHARF_EXPECT(!system.chain(b).is_overload(),
               "DMM target '" << system.chain(b).name() << "' must not be an overload chain");

  const auto lock = impl_->lock_chain(b);
  const LatencyResult& latency = impl_->latency(b);
  const TargetArtifacts& artifacts = impl_->artifacts(b);
  return dmm_from_artifacts(system, b, latency, artifacts, k, impl_->options);
}

std::vector<DmmResult> TwcaAnalyzer::dmm_curve(int chain, const std::vector<Count>& ks) const {
  std::vector<DmmResult> out;
  out.reserve(ks.size());
  for (Count k : ks) out.push_back(dmm(chain, k));
  return out;
}

bool TwcaAnalyzer::satisfies_weakly_hard(int chain, Count m, Count k) const {
  WHARF_EXPECT(m >= 0, "weakly-hard m must be >= 0, got " << m);
  return dmm(chain, k).dmm <= m;
}

}  // namespace wharf
